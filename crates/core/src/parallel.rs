//! Deterministic (optionally parallel) bulk RR-set generation.
//!
//! The paper lists distributing TIM as future work (§8); sampling θ
//! independent RR sets is embarrassingly parallel, so this module provides
//! it as an extension. Determinism is preserved by sharding the work into a
//! fixed number of shards with `jump()`-separated RNG streams: the produced
//! multiset of RR sets is a pure function of `(seed, θ)` and identical for
//! every thread count.

use tim_coverage::SetCollection;
use tim_diffusion::{DiffusionModel, RrSampler, RrStats};
use tim_graph::CsrAccess;
use tim_rng::Rng;

/// Fixed shard count, chosen so shards are plentiful enough to balance yet
/// results never depend on how many threads execute them.
pub const SHARDS: u64 = 64;

/// Per-shard set counts for a `theta`-set generation run: shard `i`
/// produces `shard_layout(theta)[i]` sets, and the output collection is
/// the shard-order concatenation.
///
/// Two properties make pools **prefix-composable**, which `tim_engine`
/// exploits to serve smaller-θ queries from a larger persisted pool
/// without resampling:
///
/// 1. shard `i`'s RNG stream depends only on `(seed, i)`, never on θ, so
///    shard `i`'s `j`-th set is the same in every run that reaches it;
/// 2. `shard_layout(θ)[i]` is non-decreasing in θ (growing θ by one adds
///    exactly one set to one shard).
///
/// Hence the collection for any `θ' ≤ θ` is recovered exactly by taking
/// the first `shard_layout(θ')[i]` sets of each shard of the θ-run.
pub fn shard_layout(theta: u64) -> Vec<u64> {
    let shards = SHARDS.min(theta.max(1));
    let per = theta / shards;
    let extra = theta % shards;
    (0..shards).map(|i| per + u64::from(i < extra)).collect()
}

/// Aggregate statistics of a bulk generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BulkStats {
    /// Σ w(R) over all generated sets.
    pub total_width: u64,
    /// Σ draws over all generated sets.
    pub total_draws: u64,
    /// Σ |R| over all generated sets.
    pub total_nodes: u64,
}

impl BulkStats {
    fn add(&mut self, s: RrStats) {
        self.total_width += s.width;
        self.total_draws += s.draws;
        self.total_nodes += s.nodes;
    }

    fn merge(&mut self, o: BulkStats) {
        self.total_width += o.total_width;
        self.total_draws += o.total_draws;
        self.total_nodes += o.total_nodes;
    }
}

/// Generates `theta` random RR sets into a [`SetCollection`].
///
/// `threads = 1` runs inline; larger values use scoped worker threads. The
/// output is identical for any `threads` value — and for any graph
/// backing: the shard RNG streams depend only on `(seed, shard)`, so a
/// heap [`Graph`](tim_graph::Graph) and an
/// [`MmapCsr`](tim_graph::MmapCsr) view of the same snapshot produce
/// bit-identical collections.
pub fn generate_rr_sets<G: CsrAccess, M: DiffusionModel<G> + Sync>(
    graph: &G,
    model: &M,
    theta: u64,
    seed: u64,
    threads: usize,
) -> (SetCollection, BulkStats) {
    assert!(graph.n() >= 1, "generate_rr_sets: empty graph");
    let mut base = Rng::seed_from_u64(seed);
    let shard_counts = shard_layout(theta);
    let shards = shard_counts.len() as u64;
    let mut shard_rngs: Vec<Rng> = (0..shards).map(|_| base.split_off()).collect();

    // Without the `parallel` feature every request runs the inline path;
    // output is identical either way, only wall-clock differs.
    let threads = if cfg!(feature = "parallel") {
        threads.max(1).min(shards as usize)
    } else {
        1
    };
    if threads == 1 {
        let mut collection =
            SetCollection::with_capacity(graph.n(), theta as usize, theta as usize * 2);
        let mut stats = BulkStats::default();
        let mut sampler = RrSampler::new(model);
        let mut buf = Vec::new();
        for (rng, &count) in shard_rngs.iter_mut().zip(&shard_counts) {
            for _ in 0..count {
                let (_, s) = sampler.sample_random(graph, rng, &mut buf);
                stats.add(s);
                collection.push(&buf);
            }
        }
        return (collection, stats);
    }

    // Parallel path: each shard produces a local collection; merge in shard
    // order so the result is thread-count independent.
    let mut locals: Vec<Option<(SetCollection, BulkStats)>> =
        (0..shards as usize).map(|_| None).collect();
    let chunk = (shards as usize).div_ceil(threads);
    std::thread::scope(|scope| {
        for ((rng_chunk, count_chunk), out_chunk) in shard_rngs
            .chunks_mut(chunk)
            .zip(shard_counts.chunks(chunk))
            .zip(locals.chunks_mut(chunk))
        {
            scope.spawn(move || {
                let mut sampler = RrSampler::new(model);
                let mut buf = Vec::new();
                for ((rng, &count), slot) in rng_chunk
                    .iter_mut()
                    .zip(count_chunk)
                    .zip(out_chunk.iter_mut())
                {
                    let mut local =
                        SetCollection::with_capacity(graph.n(), count as usize, count as usize * 2);
                    let mut stats = BulkStats::default();
                    for _ in 0..count {
                        let (_, s) = sampler.sample_random(graph, rng, &mut buf);
                        stats.add(s);
                        local.push(&buf);
                    }
                    *slot = Some((local, stats));
                }
            });
        }
    });

    let mut collection =
        SetCollection::with_capacity(graph.n(), theta as usize, theta as usize * 2);
    let mut stats = BulkStats::default();
    for slot in locals {
        let (local, s) = slot.expect("all shards must complete");
        stats.merge(s);
        for i in 0..local.len() {
            collection.push(local.set(i));
        }
    }
    (collection, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::IndependentCascade;
    use tim_graph::{gen, weights, Graph};

    fn graph() -> Graph {
        let mut g = gen::barabasi_albert(200, 4, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn generates_exactly_theta_sets() {
        let g = graph();
        let (c, stats) = generate_rr_sets(&g, &IndependentCascade, 500, 2, 1);
        assert_eq!(c.len(), 500);
        assert_eq!(stats.total_nodes as usize, c.total_members());
    }

    #[test]
    fn parallel_output_is_identical_to_serial() {
        let g = graph();
        let (c1, s1) = generate_rr_sets(&g, &IndependentCascade, 300, 3, 1);
        let (c4, s4) = generate_rr_sets(&g, &IndependentCascade, 300, 3, 4);
        assert_eq!(c1.len(), c4.len());
        assert_eq!(s1.total_width, s4.total_width);
        assert_eq!(s1.total_nodes, s4.total_nodes);
        for i in 0..c1.len() {
            assert_eq!(c1.set(i), c4.set(i), "set {i} differs");
        }
    }

    #[test]
    fn different_seeds_give_different_collections() {
        let g = graph();
        let (c1, _) = generate_rr_sets(&g, &IndependentCascade, 100, 4, 2);
        let (c2, _) = generate_rr_sets(&g, &IndependentCascade, 100, 5, 2);
        let same = (0..100).all(|i| c1.set(i) == c2.set(i));
        assert!(!same);
    }

    #[test]
    fn theta_smaller_than_shards_works() {
        let g = graph();
        let (c, _) = generate_rr_sets(&g, &IndependentCascade, 3, 6, 8);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn pools_are_prefix_composable() {
        // The property tim_engine's warm-pool replay rests on: a θ'-run is
        // recovered exactly from a θ-run (θ' <= θ) by taking the first
        // shard_layout(θ')[i] sets of each shard.
        let g = graph();
        let (big, _) = generate_rr_sets(&g, &IndependentCascade, 500, 9, 2);
        let big_counts = shard_layout(500);
        for theta in [1u64, 3, 63, 64, 65, 200, 499, 500] {
            let (small, _) = generate_rr_sets(&g, &IndependentCascade, theta, 9, 1);
            let want = shard_layout(theta);
            let mut idx = 0usize;
            let mut start = 0usize;
            for (i, &pool_count) in big_counts.iter().enumerate() {
                let take = want.get(i).copied().unwrap_or(0) as usize;
                for j in 0..take {
                    assert_eq!(
                        small.set(idx),
                        big.set(start + j),
                        "theta={theta} shard={i} set={j}"
                    );
                    idx += 1;
                }
                start += pool_count as usize;
            }
            assert_eq!(idx, small.len());
        }
    }

    #[test]
    fn shard_layout_sums_to_theta_and_is_monotone() {
        let mut prev = shard_layout(0);
        assert_eq!(prev.iter().sum::<u64>(), 0);
        for theta in 1..300u64 {
            let counts = shard_layout(theta);
            assert_eq!(counts.iter().sum::<u64>(), theta);
            assert!(counts.len() as u64 <= SHARDS);
            for (i, &c) in counts.iter().enumerate() {
                let p = prev.get(i).copied().unwrap_or(0);
                assert!(c >= p, "theta={theta} shard={i}: {c} < {p}");
            }
            prev = counts;
        }
    }

    #[test]
    fn select_sharding_matches_sampling_shard_layout() {
        // The sharded greedy solver partitions the pool by the same
        // shard-prefix arithmetic that sampling uses, so a "shard" means
        // the same slice of sets in both phases. Pin the two together.
        use tim_coverage::sharded::{shard_prefix_ranges, SELECT_SHARDS};
        assert_eq!(SELECT_SHARDS as u64, SHARDS);
        for theta in [64u64, 65, 100, 1_000, 4_099] {
            let counts = shard_layout(theta);
            let ranges = shard_prefix_ranges(theta as usize, SELECT_SHARDS);
            assert_eq!(counts.len(), ranges.len());
            for (i, (c, r)) in counts.iter().zip(&ranges).enumerate() {
                assert_eq!(*c, r.len() as u64, "theta={theta} shard={i}");
            }
        }
    }

    #[test]
    fn zero_theta_yields_empty_collection() {
        let g = graph();
        let (c, stats) = generate_rr_sets(&g, &IndependentCascade, 0, 7, 2);
        assert!(c.is_empty());
        assert_eq!(stats.total_nodes, 0);
    }
}
