//! Algorithm 3 — `RefineKPT`, the heuristic that turns TIM into TIM+.
//!
//! Motivation (§4.1): KPT* is often far below OPT on real graphs, making
//! θ = λ/KPT* wastefully large. RefineKPT reuses the last iteration's RR
//! sets to greedily build a *good* candidate seed set `S'_k`, estimates its
//! spread on θ′ = λ′/KPT* fresh RR sets, and scales the estimate down by
//! `(1 + ε′)` so that `KPT′ ≤ E[I(S'_k)] ≤ OPT` holds with probability
//! `1 − n^(−ℓ)` (Lemma 8). The output `KPT⁺ = max(KPT′, KPT*)` is never
//! worse than KPT* and empirically ~3× tighter (paper Figure 5).

use crate::kpt::KptEstimate;
use crate::math::{epsilon_prime, lambda_prime};
use crate::parallel::generate_rr_sets;
use crate::select::run_greedy;
use crate::tim::GreedyImpl;
use tim_coverage::SelectStrategy;
use tim_diffusion::DiffusionModel;
use tim_graph::CsrAccess;
use tim_rng::{RandomSource, Rng};

/// Output of [`refine_kpt`].
#[derive(Debug, Clone)]
pub struct Refined {
    /// `KPT⁺ = max(KPT′, KPT*)`: the tightened lower bound on OPT.
    pub kpt_plus: f64,
    /// The intermediate estimate `KPT′ = f·n/(1 + ε′)`.
    pub kpt_prime: f64,
    /// ε′ used (the paper's §4.1 formula unless overridden).
    pub epsilon_prime: f64,
    /// θ′: number of fresh RR sets sampled for the spread estimate.
    pub theta_prime: u64,
}

/// Runs Algorithm 3.
///
/// `kpt` is the output of [`estimate_kpt`](crate::kpt::estimate_kpt)
/// (consumed for its last-iteration RR sets); `eps_prime_override` forces a
/// specific ε′ (`None` uses `5·(ℓ·ε²/(k+ℓ))^(1/3)`).
#[allow(clippy::too_many_arguments)]
pub fn refine_kpt<G: CsrAccess, M: DiffusionModel<G> + Sync>(
    graph: &G,
    model: &M,
    k: usize,
    epsilon: f64,
    ell: f64,
    mut kpt: KptEstimate,
    eps_prime_override: Option<f64>,
    rng: &mut Rng,
    threads: usize,
    select_threads: usize,
    select_strategy: SelectStrategy,
    greedy: GreedyImpl,
) -> Refined {
    let n = graph.n() as u64;
    let eps_p = eps_prime_override.unwrap_or_else(|| epsilon_prime(epsilon, k.max(1) as u64, ell));
    assert!(eps_p > 0.0, "refine_kpt: epsilon_prime must be positive");

    // Lines 2-6: greedy cover on the last iteration's RR sets.
    let cover = run_greedy(
        &mut kpt.last_iteration_sets,
        k,
        greedy,
        select_threads,
        select_strategy,
    );
    let candidate = cover.seeds;

    // Lines 7-9: θ' fresh RR sets.
    let lam_p = lambda_prime(n, eps_p, ell);
    let theta_prime = (lam_p / kpt.kpt_star).ceil().max(1.0) as u64;
    let (collection, _) = generate_rr_sets(graph, model, theta_prime, rng.next_u64(), threads);

    // Lines 10-12.
    let f = collection.coverage_fraction(&candidate);
    let kpt_prime = f * n as f64 / (1.0 + eps_p);
    Refined {
        kpt_plus: kpt_prime.max(kpt.kpt_star),
        kpt_prime,
        epsilon_prime: eps_p,
        theta_prime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpt::estimate_kpt;
    use tim_diffusion::{IndependentCascade, SpreadEstimator};
    use tim_graph::{gen, weights, Graph};

    fn setup(seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(400, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn kpt_plus_never_below_kpt_star() {
        let g = setup(1);
        let mut rng = Rng::seed_from_u64(2);
        let kpt = estimate_kpt(&g, &IndependentCascade, 10, 1.0, &mut rng);
        let star = kpt.kpt_star;
        let refined = refine_kpt(
            &g,
            &IndependentCascade,
            10,
            0.5,
            1.0,
            kpt,
            None,
            &mut rng,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        assert!(refined.kpt_plus >= star);
        assert!(refined.theta_prime >= 1);
    }

    #[test]
    fn kpt_plus_tightens_the_bound_on_scale_free_graphs() {
        // The paper reports KPT+ >= 3x KPT* on NetHEPT; our BA stand-in
        // should show a clear improvement too (>= 1.2x is conservative).
        let g = setup(3);
        let mut rng = Rng::seed_from_u64(4);
        let kpt = estimate_kpt(&g, &IndependentCascade, 20, 1.0, &mut rng);
        let star = kpt.kpt_star;
        let refined = refine_kpt(
            &g,
            &IndependentCascade,
            20,
            0.5,
            1.0,
            kpt,
            None,
            &mut rng,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        assert!(
            refined.kpt_plus >= 1.2 * star,
            "KPT+ = {} vs KPT* = {star}: refinement should tighten",
            refined.kpt_plus
        );
    }

    #[test]
    fn kpt_plus_stays_below_opt_proxy() {
        // KPT+ <= OPT w.h.p. Compare to the MC spread of TIM's own
        // selection with generous theta, a lower bound on OPT.
        let g = setup(5);
        let k = 10;
        let mut rng = Rng::seed_from_u64(6);
        let kpt = estimate_kpt(&g, &IndependentCascade, k as u64, 1.0, &mut rng);
        let refined = refine_kpt(
            &g,
            &IndependentCascade,
            k,
            0.5,
            1.0,
            kpt,
            None,
            &mut rng,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        let sel = crate::select::node_selection(
            &g,
            &IndependentCascade,
            k,
            20_000,
            7,
            2,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        let opt_proxy = SpreadEstimator::new(IndependentCascade)
            .runs(20_000)
            .seed(8)
            .estimate(&g, &sel.seeds);
        assert!(
            refined.kpt_plus <= 1.2 * opt_proxy,
            "KPT+ = {} vs OPT proxy {opt_proxy}",
            refined.kpt_plus
        );
    }

    #[test]
    fn epsilon_prime_override_is_respected() {
        let g = setup(9);
        let mut rng = Rng::seed_from_u64(10);
        let kpt = estimate_kpt(&g, &IndependentCascade, 5, 1.0, &mut rng);
        let refined = refine_kpt(
            &g,
            &IndependentCascade,
            5,
            0.5,
            1.0,
            kpt,
            Some(0.25),
            &mut rng,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        assert_eq!(refined.epsilon_prime, 0.25);
    }

    #[test]
    fn refinement_is_deterministic() {
        let g = setup(11);
        let run = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let kpt = estimate_kpt(&g, &IndependentCascade, 8, 1.0, &mut rng);
            refine_kpt(
                &g,
                &IndependentCascade,
                8,
                0.5,
                1.0,
                kpt,
                None,
                &mut rng,
                2,
                2,
                SelectStrategy::Auto,
                GreedyImpl::LazyHeap,
            )
            .kpt_plus
        };
        assert_eq!(run(12), run(12));
    }
}
