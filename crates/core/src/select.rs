//! Algorithm 1 — `NodeSelection`.
//!
//! Samples θ random RR sets and solves the induced maximum-coverage
//! instance greedily. Given θ ≥ λ/OPT (Equation 5), the returned seed set
//! is a `(1 − 1/e − ε)`-approximation with probability `1 − n^(−ℓ)`
//! (Theorem 1).

use crate::parallel::{generate_rr_sets, BulkStats};
use crate::tim::GreedyImpl;
use tim_coverage::{
    greedy_max_cover, greedy_max_cover_bucket, greedy_max_cover_sharded_with, CoverResult,
    SelectStrategy, SetCollection,
};
use tim_diffusion::DiffusionModel;
use tim_graph::{CsrAccess, NodeId};

/// Resolves a `select_threads` knob to a worker count: `0` means all
/// cores, anything else is taken literally. Without the `parallel`
/// feature every value resolves to 1 (serial), like sampling.
pub fn resolve_select_threads(select_threads: usize) -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if select_threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        select_threads
    }
}

/// Runs the configured greedy solver over `collection`, sharding the
/// lazy-heap solver across [`resolve_select_threads`]`(select_threads)`
/// workers finding their per-round argmax per `select_strategy`. Neither
/// thread count nor strategy ever changes the result — the sharded solver
/// is byte-identical to the serial one — so callers may tune both freely.
pub(crate) fn run_greedy(
    collection: &mut SetCollection,
    k: usize,
    greedy: GreedyImpl,
    select_threads: usize,
    select_strategy: SelectStrategy,
) -> CoverResult {
    match greedy {
        GreedyImpl::LazyHeap => match resolve_select_threads(select_threads) {
            0 | 1 => greedy_max_cover(collection, k),
            t => greedy_max_cover_sharded_with(collection, k, t, select_strategy),
        },
        GreedyImpl::BucketQueue => greedy_max_cover_bucket(collection, k),
    }
}

/// Output of [`node_selection`].
#[derive(Debug)]
pub struct Selection {
    /// The chosen size-`k` seed set, in greedy order.
    pub seeds: Vec<NodeId>,
    /// `n · F_R(S)`: the coverage-based unbiased estimate of `E[I(S)]`
    /// (Corollary 1).
    pub estimated_spread: f64,
    /// Fraction of RR sets covered by the seeds.
    pub coverage_fraction: f64,
    /// Number of RR sets sampled (θ).
    pub theta: u64,
    /// Peak bytes held by the RR-set arena (Figure 12's dominant term).
    pub rr_memory_bytes: usize,
    /// Aggregate sampling statistics.
    pub stats: BulkStats,
}

/// Runs Algorithm 1: samples `theta` RR sets under `model` and greedily
/// selects `k` nodes. `threads` drives sampling, `select_threads` the
/// greedy phase ([`resolve_select_threads`]; 1 = serial, 0 = all cores)
/// and `select_strategy` how its workers search (eager scan or lazy
/// heap); none of the three ever changes the answer.
#[allow(clippy::too_many_arguments)]
pub fn node_selection<G: CsrAccess, M: DiffusionModel<G> + Sync>(
    graph: &G,
    model: &M,
    k: usize,
    theta: u64,
    seed: u64,
    threads: usize,
    select_threads: usize,
    select_strategy: SelectStrategy,
    greedy: GreedyImpl,
) -> Selection {
    let (mut collection, stats) = generate_rr_sets(graph, model, theta, seed, threads);
    let rr_memory_bytes = collection.memory_bytes();
    let cover: CoverResult =
        run_greedy(&mut collection, k, greedy, select_threads, select_strategy);
    let frac = cover.coverage_fraction(collection.len());
    Selection {
        estimated_spread: frac * graph.n() as f64,
        coverage_fraction: frac,
        seeds: cover.seeds,
        theta,
        rr_memory_bytes: rr_memory_bytes.max(collection.memory_bytes()),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, SpreadEstimator};
    use tim_graph::{gen, weights, GraphBuilder};

    #[test]
    fn selects_k_distinct_seeds() {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 1);
        weights::assign_weighted_cascade(&mut g);
        let sel = node_selection(
            &g,
            &IndependentCascade,
            10,
            2_000,
            2,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        assert_eq!(sel.seeds.len(), 10);
        let mut s = sel.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert!(sel.coverage_fraction > 0.0 && sel.coverage_fraction <= 1.0);
    }

    #[test]
    fn obvious_hub_is_selected_first() {
        // Star: 0 -> everyone with p = 1. RR set of any node contains 0.
        let n = 50;
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge_with_probability(0, v, 1.0);
        }
        let g = b.build();
        let sel = node_selection(
            &g,
            &IndependentCascade,
            1,
            500,
            3,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        assert_eq!(sel.seeds, vec![0]);
        assert_eq!(sel.coverage_fraction, 1.0);
        assert_eq!(sel.estimated_spread, n as f64);
    }

    #[test]
    fn coverage_estimate_tracks_monte_carlo_spread() {
        let mut g = gen::barabasi_albert(300, 4, 0.0, 4);
        weights::assign_weighted_cascade(&mut g);
        let sel = node_selection(
            &g,
            &IndependentCascade,
            5,
            20_000,
            5,
            2,
            2,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        let mc = SpreadEstimator::new(IndependentCascade)
            .runs(20_000)
            .seed(6)
            .estimate(&g, &sel.seeds);
        let rel = (sel.estimated_spread - mc).abs() / mc;
        assert!(
            rel < 0.1,
            "coverage estimate {} vs MC {} (rel {rel})",
            sel.estimated_spread,
            mc
        );
    }

    #[test]
    fn greedy_variants_give_same_quality() {
        let mut g = gen::barabasi_albert(200, 3, 0.0, 7);
        weights::assign_weighted_cascade(&mut g);
        let a = node_selection(
            &g,
            &IndependentCascade,
            8,
            5_000,
            8,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        let b = node_selection(
            &g,
            &IndependentCascade,
            8,
            5_000,
            8,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::BucketQueue,
        );
        let rel = (a.coverage_fraction - b.coverage_fraction).abs() / a.coverage_fraction.max(1e-9);
        assert!(
            rel < 0.02,
            "lazy {} vs bucket {}",
            a.coverage_fraction,
            b.coverage_fraction
        );
    }

    #[test]
    fn selection_is_deterministic_across_thread_counts() {
        let mut g = gen::barabasi_albert(150, 3, 0.0, 9);
        weights::assign_weighted_cascade(&mut g);
        let a = node_selection(
            &g,
            &IndependentCascade,
            5,
            3_000,
            10,
            1,
            1,
            SelectStrategy::Auto,
            GreedyImpl::LazyHeap,
        );
        // Both sampling and selection thread counts vary; the answer may
        // not (0 = all cores exercises the auto-resolution path too).
        for (threads, select_threads) in [(4, 2), (2, 4), (1, 8), (4, 0)] {
            let b = node_selection(
                &g,
                &IndependentCascade,
                5,
                3_000,
                10,
                threads,
                select_threads,
                SelectStrategy::Auto,
                GreedyImpl::LazyHeap,
            );
            assert_eq!(a.seeds, b.seeds, "select_threads={select_threads}");
            assert_eq!(a.estimated_spread, b.estimated_spread);
        }
    }
}
