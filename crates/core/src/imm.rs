//! IMM — Influence Maximization via Martingales (Tang, Shi, Xiao;
//! SIGMOD 2015), the authors' follow-up that supersedes TIM+'s parameter
//! estimation.
//!
//! This is the extension feature of this workspace (the TIM paper's §8
//! future work points toward cheaper estimation; IMM is what the authors
//! published next). Differences from TIM+:
//!
//! - **One sampling pool.** IMM grows a single RR-set collection across
//!   estimation iterations and reuses it for the final selection. The sets
//!   are no longer independent given the data-dependent stopping rule, but
//!   martingale concentration bounds replace the Chernoff bounds, so the
//!   `(1 − 1/e − ε)` guarantee survives with probability `1 − n^(−ℓ)`.
//! - **Search for a lower bound `LB` on OPT** by statistical testing: at
//!   iteration `i`, with `x = n/2^i` and `θ_i = λ′/x` sets, run greedy; if
//!   the covered fraction certifies spread ≥ `(1 + ε′)·x`, stop with
//!   `LB = n·F_R(S_i)/(1 + ε′)`.
//! - Final θ = `λ*/LB` with the tighter constant
//!   `λ* = 2n·((1 − 1/e)·α + β)²·ε^(−2)`.
//!
//! The module reuses this workspace's RR sampler and coverage solver, so
//! IMM, TIM and TIM+ are directly comparable (see the `ablation`
//! experiment).

use crate::math::ln_choose;
use crate::select::run_greedy;
use crate::tim::{GreedyImpl, PhaseTimings};
use std::time::Instant;
use tim_coverage::{CoverResult, SelectStrategy, SetCollection};
use tim_diffusion::{DiffusionModel, RrSampler};
use tim_graph::{Graph, NodeId};
use tim_rng::Rng;

/// Output of an IMM run.
#[derive(Debug, Clone)]
pub struct ImmResult {
    /// The selected size-`k` seed set, in greedy order.
    pub seeds: Vec<NodeId>,
    /// Total RR sets in the final collection (sampling + top-up).
    pub theta: u64,
    /// The certified lower bound on OPT found by the sampling phase.
    pub lb: f64,
    /// Iterations used by the sampling phase.
    pub sampling_iterations: u32,
    /// `n · F_R(S)` for the final seeds.
    pub estimated_spread: f64,
    /// Fraction of RR sets covered by the final seeds.
    pub coverage_fraction: f64,
    /// Peak bytes of the RR arena.
    pub rr_memory_bytes: usize,
    /// Wall-clock per phase (`parameter_estimation` = sampling phase,
    /// `refinement` unused, `node_selection` = final greedy).
    pub phases: PhaseTimings,
}

/// The IMM algorithm.
#[derive(Debug, Clone)]
pub struct Imm<M> {
    model: M,
    epsilon: f64,
    ell: f64,
    seed: u64,
    select_threads: usize,
    select_strategy: SelectStrategy,
    greedy: GreedyImpl,
}

impl<M: DiffusionModel + Sync> Imm<M> {
    /// Creates an IMM runner with the paper's defaults (ε = 0.1, ℓ = 1).
    pub fn new(model: M) -> Self {
        Self {
            model,
            epsilon: 0.1,
            ell: 1.0,
            seed: 0,
            select_threads: 1,
            select_strategy: SelectStrategy::Auto,
            greedy: GreedyImpl::LazyHeap,
        }
    }

    /// Sets the approximation slack ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure exponent ℓ.
    #[must_use]
    pub fn ell(mut self, ell: f64) -> Self {
        assert!(ell > 0.0, "ell must be positive");
        self.ell = ell;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the greedy selection steps (default 1 = serial;
    /// 0 = all cores). Never changes the answer.
    #[must_use]
    pub fn select_threads(mut self, select_threads: usize) -> Self {
        self.select_threads = select_threads;
        self
    }

    /// How sharded selection workers find each round's argmax (default
    /// [`SelectStrategy::Auto`] = lazy). Never changes the answer.
    #[must_use]
    pub fn select_strategy(mut self, strategy: SelectStrategy) -> Self {
        self.select_strategy = strategy;
        self
    }

    /// Chooses the greedy max-coverage implementation.
    #[must_use]
    pub fn greedy(mut self, greedy: GreedyImpl) -> Self {
        self.greedy = greedy;
        self
    }

    fn cover(&self, collection: &mut SetCollection, k: usize) -> CoverResult {
        run_greedy(
            collection,
            k,
            self.greedy,
            self.select_threads,
            self.select_strategy,
        )
    }

    /// Selects `k` seeds on `graph`.
    ///
    /// # Panics
    /// Panics if the graph has fewer than 2 nodes or no edges, or `k == 0`.
    pub fn run(&self, graph: &Graph, k: usize) -> ImmResult {
        assert!(k >= 1, "k must be at least 1");
        assert!(graph.n() >= 2, "graph must have at least 2 nodes");
        assert!(graph.m() >= 1, "graph must have at least 1 edge");
        let k = k.min(graph.n());
        let n = graph.n() as f64;
        let n_u = graph.n() as u64;

        // IMM §4.2: run with ℓ' = ℓ·(1 + ln 2 / ln n) so the union of the
        // two phases' failure probabilities stays below n^-ℓ.
        let ell = self.ell * (1.0 + 2.0f64.ln() / n.ln());
        let eps = self.epsilon;
        let ln_cnk = ln_choose(n_u, k as u64);
        let log2n = n.log2();

        // Sampling phase (IMM Algorithm 2).
        let eps_p = eps * std::f64::consts::SQRT_2;
        let lambda_p =
            (2.0 + 2.0 * eps_p / 3.0) * (ln_cnk + ell * n.ln() + log2n.max(1.0).ln()) * n
                / (eps_p * eps_p);

        let mut rng = Rng::seed_from_u64(self.seed);
        let mut sampler = RrSampler::new(&self.model);
        let mut collection = SetCollection::new(graph.n());
        let mut buf: Vec<NodeId> = Vec::new();

        let t0 = Instant::now();
        let mut lb = 1.0f64;
        let mut iterations = 0u32;
        let max_iter = (log2n.floor() as i64 - 1).max(1) as u32;
        for i in 1..=max_iter {
            iterations = i;
            let x = n / (1u64 << i) as f64;
            let theta_i = (lambda_p / x).ceil() as u64;
            while (collection.len() as u64) < theta_i {
                sampler.sample_random(graph, &mut rng, &mut buf);
                collection.push(&buf);
            }
            let cover = self.cover(&mut collection, k);
            let frac = cover.coverage_fraction(collection.len());
            if n * frac >= (1.0 + eps_p) * x {
                lb = n * frac / (1.0 + eps_p);
                break;
            }
        }
        let sampling_time = t0.elapsed();

        // Final θ (IMM Equation 6): λ* = 2n·((1 - 1/e)·α + β)² / ε².
        let alpha = (ell * n.ln() + 2.0f64.ln()).sqrt();
        let beta =
            ((1.0 - 1.0 / std::f64::consts::E) * (ln_cnk + ell * n.ln() + 2.0f64.ln())).sqrt();
        let lambda_star =
            2.0 * n * ((1.0 - 1.0 / std::f64::consts::E) * alpha + beta).powi(2) / (eps * eps);
        let theta = (lambda_star / lb).ceil().max(1.0) as u64;

        // Top up the shared pool to θ (the martingale reuse).
        let t1 = Instant::now();
        while (collection.len() as u64) < theta {
            sampler.sample_random(graph, &mut rng, &mut buf);
            collection.push(&buf);
        }
        let rr_memory_bytes = collection.memory_bytes();
        let cover = self.cover(&mut collection, k);
        let selection_time = t1.elapsed();
        let frac = cover.coverage_fraction(collection.len());

        ImmResult {
            seeds: cover.seeds,
            theta: collection.len() as u64,
            lb,
            sampling_iterations: iterations,
            estimated_spread: frac * n,
            coverage_fraction: frac,
            rr_memory_bytes,
            phases: PhaseTimings {
                parameter_estimation: sampling_time,
                refinement: std::time::Duration::ZERO,
                node_selection: selection_time,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimPlus;
    use tim_diffusion::{IndependentCascade, LinearThreshold, SpreadEstimator};
    use tim_graph::{gen, weights};

    fn wc_graph(n: usize, seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(n, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let g = wc_graph(300, 1);
        let r = Imm::new(IndependentCascade).epsilon(0.5).seed(2).run(&g, 8);
        assert_eq!(r.seeds.len(), 8);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 8);
        assert!(r.theta >= 1);
        assert!(r.lb >= 1.0);
        assert!(r.sampling_iterations >= 1);
    }

    #[test]
    fn lb_is_bounded_by_opt_proxy() {
        let g = wc_graph(400, 3);
        let k = 10;
        let r = Imm::new(IndependentCascade).epsilon(0.4).seed(4).run(&g, k);
        let spread = SpreadEstimator::new(IndependentCascade)
            .runs(10_000)
            .seed(5)
            .estimate(&g, &r.seeds);
        // LB certifies a lower bound on OPT; the selected seeds' spread is
        // also a lower bound on OPT, and LB should not exceed it by much.
        assert!(
            r.lb <= 1.2 * spread,
            "LB {} vs achieved spread {spread}",
            r.lb
        );
    }

    #[test]
    fn quality_matches_tim_plus() {
        let g = wc_graph(400, 6);
        let k = 10;
        let imm = Imm::new(IndependentCascade).epsilon(0.5).seed(7).run(&g, k);
        let timp = TimPlus::new(IndependentCascade)
            .epsilon(0.5)
            .seed(7)
            .run(&g, k);
        let est = SpreadEstimator::new(IndependentCascade)
            .runs(10_000)
            .seed(8);
        let s_imm = est.estimate(&g, &imm.seeds);
        let s_timp = est.estimate(&g, &timp.seeds);
        let rel = (s_imm - s_timp).abs() / s_timp;
        assert!(rel < 0.1, "IMM {s_imm} vs TIM+ {s_timp}");
    }

    #[test]
    fn imm_uses_fewer_or_comparable_rr_sets_than_tim_plus() {
        // IMM's headline improvement: smaller sampling effort. Because our
        // TIM+ already refines aggressively, allow parity with slack.
        let g = wc_graph(500, 9);
        let k = 20;
        let imm = Imm::new(IndependentCascade)
            .epsilon(0.3)
            .seed(10)
            .run(&g, k);
        let timp = TimPlus::new(IndependentCascade)
            .epsilon(0.3)
            .seed(10)
            .run(&g, k);
        assert!(
            (imm.theta as f64) < 2.0 * timp.theta as f64,
            "IMM theta {} should be in the same ballpark as TIM+ theta {}",
            imm.theta,
            timp.theta
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = wc_graph(200, 11);
        let a = Imm::new(IndependentCascade)
            .epsilon(0.6)
            .seed(12)
            .run(&g, 5);
        let b = Imm::new(IndependentCascade)
            .epsilon(0.6)
            .seed(12)
            .run(&g, 5);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.lb, b.lb);
        for select_threads in [2, 4, 0] {
            for strategy in [SelectStrategy::Eager, SelectStrategy::Lazy] {
                let c = Imm::new(IndependentCascade)
                    .epsilon(0.6)
                    .seed(12)
                    .select_threads(select_threads)
                    .select_strategy(strategy)
                    .run(&g, 5);
                assert_eq!(
                    a.seeds, c.seeds,
                    "select_threads={select_threads} {strategy}"
                );
                assert_eq!(a.lb, c.lb);
            }
        }
    }

    #[test]
    fn works_under_lt() {
        let mut g = gen::barabasi_albert(250, 4, 0.0, 13);
        weights::assign_lt_normalized(&mut g, 14);
        let r = Imm::new(LinearThreshold).epsilon(0.5).seed(15).run(&g, 6);
        assert_eq!(r.seeds.len(), 6);
        assert!(r.estimated_spread >= 1.0);
    }

    #[test]
    fn theta_scales_with_epsilon() {
        let g = wc_graph(250, 16);
        let loose = Imm::new(IndependentCascade)
            .epsilon(1.0)
            .seed(17)
            .run(&g, 5);
        let tight = Imm::new(IndependentCascade)
            .epsilon(0.4)
            .seed(17)
            .run(&g, 5);
        assert!(
            tight.theta > loose.theta,
            "theta should grow as eps shrinks: {} vs {}",
            tight.theta,
            loose.theta
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let g = wc_graph(50, 18);
        Imm::new(IndependentCascade).run(&g, 0);
    }
}
