//! **TIM / TIM+** — Two-phase Influence Maximization.
//!
//! This crate implements the paper's contribution: an influence
//! maximization algorithm that returns a `(1 − 1/e − ε)`-approximate
//! seed set with probability at least `1 − n^(−ℓ)` in
//! `O((k + ℓ)(m + n) log n / ε²)` expected time, under any triggering
//! model (Theorems 1–3).
//!
//! Structure, mirroring the paper:
//!
//! | Paper | Module | Entry point |
//! |---|---|---|
//! | Algorithm 2, `KptEstimation` | [`kpt`] | [`kpt::estimate_kpt`] |
//! | Algorithm 3, `RefineKPT` (the TIM+ heuristic, §4.1) | [`refine`] | [`refine::refine_kpt`] |
//! | Algorithm 1, `NodeSelection` | [`select`] | [`select::node_selection`] |
//! | λ, θ, ε′, `ln C(n, k)` (Equations 4, 9; §4.1) | [`math`] | — |
//! | End-to-end drivers (§3.3) | [`tim`] | [`Tim`], [`TimPlus`] |
//!
//! ```
//! use tim_core::TimPlus;
//! use tim_diffusion::IndependentCascade;
//! use tim_graph::{gen, weights};
//!
//! let mut g = gen::barabasi_albert(500, 4, 0.1, 1);
//! weights::assign_weighted_cascade(&mut g);
//! let result = TimPlus::new(IndependentCascade)
//!     .epsilon(0.5)
//!     .seed(7)
//!     .run(&g, 5);
//! assert_eq!(result.seeds.len(), 5);
//! assert!(result.kpt_plus.unwrap() >= result.kpt_star);
//! ```

pub mod imm;
pub mod kpt;
pub mod math;
pub mod parallel;
pub mod refine;
pub mod select;
pub mod tim;

pub use imm::{Imm, ImmResult};
pub use tim::{
    select_stream_seed, GreedyImpl, PhaseTimings, SamplingPlan, Tim, TimPlus, TimResult,
};
// Re-exported so downstream crates (engine, server, CLI) can name the
// selection knobs without depending on tim_coverage directly.
pub use tim_coverage::{EvalStats, SelectStrategy};
