//! Algorithm 2 — `KptEstimation`: adaptive estimation of KPT.
//!
//! KPT is the expected spread of a seed set formed by `k` draws from the
//! in-degree-proportional distribution `V*`; it satisfies
//! `(n/m)·EPT ≤ KPT ≤ OPT` (Equation 7) and can be measured on RR sets
//! through `κ(R) = 1 − (1 − w(R)/m)^k` (Lemma 5).
//!
//! The estimator runs at most `log₂(n) − 1` doubling iterations. Iteration
//! `i` draws `c_i` RR sets (Equation 9) and stops as soon as the empirical
//! mean of `κ` clears `2^(−i)`, returning half of the scaled mean —
//! guaranteeing `KPT* ∈ [KPT/4, OPT]` with probability `1 − n^(−ℓ)`
//! (Theorem 2).

use crate::math::{kappa, kpt_iteration_samples};
use tim_coverage::SetCollection;
use tim_diffusion::{DiffusionModel, RrSampler};
use tim_graph::CsrAccess;
use tim_rng::Rng;

/// Output of [`estimate_kpt`].
#[derive(Debug)]
pub struct KptEstimate {
    /// `KPT*`: the lower bound on OPT (at least 1).
    pub kpt_star: f64,
    /// The RR sets generated in the **last** iteration — reused by
    /// Algorithm 3 (`RefineKPT` line 1).
    pub last_iteration_sets: SetCollection,
    /// Iteration at which the estimator stopped (1-based; 0 if the loop
    /// never ran because the graph is tiny).
    pub iterations: u32,
    /// Total RR sets generated across all iterations.
    pub total_rr_sets: u64,
    /// Total RR-set width generated (Σ w(R)); `width/sets` estimates EPT.
    pub total_width: u64,
}

impl KptEstimate {
    /// Empirical estimate of EPT, the expected RR-set width.
    pub fn ept_estimate(&self) -> f64 {
        if self.total_rr_sets == 0 {
            0.0
        } else {
            self.total_width as f64 / self.total_rr_sets as f64
        }
    }
}

/// Runs Algorithm 2 on `graph` for seed-set size `k`.
///
/// # Panics
/// Panics if the graph has no nodes or no edges (KPT is undefined without
/// edges; callers special-case empty graphs).
pub fn estimate_kpt<G: CsrAccess, M: DiffusionModel<G>>(
    graph: &G,
    model: &M,
    k: u64,
    ell: f64,
    rng: &mut Rng,
) -> KptEstimate {
    let n = graph.n() as u64;
    let m = graph.m() as u64;
    assert!(n >= 2, "estimate_kpt: need at least 2 nodes");
    assert!(m >= 1, "estimate_kpt: need at least 1 edge");

    let mut sampler = RrSampler::new(model);
    let mut buf = Vec::new();
    let mut total_rr_sets = 0u64;
    let mut total_width = 0u64;

    // "for i = 1 to log2(n) - 1" — at least one iteration so that
    // Algorithm 3 always has a non-empty R' to refine.
    let max_iter = ((n as f64).log2().floor() as i64 - 1).max(1) as u32;

    for i in 1..=max_iter {
        let ci = kpt_iteration_samples(n, ell, i);
        let mut sets = SetCollection::with_capacity(graph.n(), ci as usize, ci as usize * 4);
        let mut sum = 0.0f64;
        for _ in 0..ci {
            let (_, stats) = sampler.sample_random(graph, rng, &mut buf);
            sum += kappa(stats.width, m, k);
            total_width += stats.width;
            sets.push(&buf);
        }
        total_rr_sets += ci;
        if sum / ci as f64 > 1.0 / (1u64 << i) as f64 {
            return KptEstimate {
                kpt_star: (n as f64 * sum / (2.0 * ci as f64)).max(1.0),
                last_iteration_sets: sets,
                iterations: i,
                total_rr_sets,
                total_width,
            };
        }
        if i == max_iter {
            // Fell through every iteration: KPT* = 1 (Algorithm 2 line 10),
            // but keep the final iteration's sets for RefineKPT.
            return KptEstimate {
                kpt_star: 1.0,
                last_iteration_sets: sets,
                iterations: i,
                total_rr_sets,
                total_width,
            };
        }
    }
    unreachable!("loop always returns on its final iteration");
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_diffusion::{IndependentCascade, LinearThreshold, SpreadEstimator};
    use tim_graph::{gen, weights, Graph};

    fn wc_graph(seed: u64) -> Graph {
        let mut g = gen::barabasi_albert(400, 4, 0.0, seed);
        weights::assign_weighted_cascade(&mut g);
        g
    }

    #[test]
    fn kpt_star_is_at_least_one() {
        let g = wc_graph(1);
        let mut rng = Rng::seed_from_u64(2);
        let est = estimate_kpt(&g, &IndependentCascade, 5, 1.0, &mut rng);
        assert!(est.kpt_star >= 1.0);
        assert!(est.iterations >= 1);
        assert!(est.total_rr_sets > 0);
    }

    #[test]
    fn kpt_star_is_below_n() {
        let g = wc_graph(3);
        let mut rng = Rng::seed_from_u64(4);
        let est = estimate_kpt(&g, &IndependentCascade, 5, 1.0, &mut rng);
        assert!(est.kpt_star <= g.n() as f64);
    }

    #[test]
    fn kpt_star_increases_with_k() {
        // KPT is monotone in k (§3.2); the estimate should track that
        // within noise.
        let g = wc_graph(5);
        let mut rng1 = Rng::seed_from_u64(6);
        let mut rng2 = Rng::seed_from_u64(6);
        let small = estimate_kpt(&g, &IndependentCascade, 1, 1.0, &mut rng1);
        let large = estimate_kpt(&g, &IndependentCascade, 50, 1.0, &mut rng2);
        assert!(
            large.kpt_star >= 0.5 * small.kpt_star,
            "KPT*(k=50) = {} unexpectedly far below KPT*(k=1) = {}",
            large.kpt_star,
            small.kpt_star
        );
    }

    #[test]
    fn kpt_star_lower_bounds_a_strong_seed_sets_spread() {
        // KPT* <= OPT w.h.p.; compare against the spread of high-degree
        // seeds, which lower-bounds OPT.
        let g = wc_graph(7);
        let k = 10;
        let mut rng = Rng::seed_from_u64(8);
        let est = estimate_kpt(&g, &IndependentCascade, k, 1.0, &mut rng);
        let mut by_deg: Vec<u32> = (0..g.n() as u32).collect();
        by_deg.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        let seeds: Vec<u32> = by_deg[..k as usize].to_vec();
        let spread = SpreadEstimator::new(IndependentCascade)
            .runs(5_000)
            .seed(9)
            .estimate(&g, &seeds);
        // OPT >= spread; allow slack for the w.h.p. qualifier.
        assert!(
            est.kpt_star <= 1.5 * spread,
            "KPT* = {} vs high-degree spread {}",
            est.kpt_star,
            spread
        );
    }

    #[test]
    fn last_iteration_sets_are_kept() {
        let g = wc_graph(10);
        let mut rng = Rng::seed_from_u64(11);
        let est = estimate_kpt(&g, &IndependentCascade, 5, 1.0, &mut rng);
        assert!(!est.last_iteration_sets.is_empty());
        assert_eq!(est.last_iteration_sets.universe(), g.n());
        // Every stored set is non-empty (contains at least its root).
        for i in 0..est.last_iteration_sets.len() {
            assert!(!est.last_iteration_sets.set(i).is_empty());
        }
    }

    #[test]
    fn estimation_is_seed_deterministic() {
        let g = wc_graph(12);
        let mut r1 = Rng::seed_from_u64(13);
        let mut r2 = Rng::seed_from_u64(13);
        let a = estimate_kpt(&g, &IndependentCascade, 8, 1.0, &mut r1);
        let b = estimate_kpt(&g, &IndependentCascade, 8, 1.0, &mut r2);
        assert_eq!(a.kpt_star, b.kpt_star);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.total_rr_sets, b.total_rr_sets);
    }

    #[test]
    fn works_under_lt_model() {
        let mut g = gen::barabasi_albert(300, 4, 0.0, 14);
        weights::assign_lt_normalized(&mut g, 15);
        let mut rng = Rng::seed_from_u64(16);
        let est = estimate_kpt(&g, &LinearThreshold, 10, 1.0, &mut rng);
        assert!(est.kpt_star >= 1.0);
        assert!(est.kpt_star <= g.n() as f64);
        assert!(est.ept_estimate() > 0.0);
    }

    #[test]
    fn low_influence_graph_converges_to_small_kpt() {
        // Near-zero probabilities: RR sets are singletons, KPT ~ 1.
        let mut g = gen::erdos_renyi_gnm(256, 1024, 17);
        weights::assign_constant(&mut g, 0.001);
        let mut rng = Rng::seed_from_u64(18);
        let est = estimate_kpt(&g, &IndependentCascade, 1, 1.0, &mut rng);
        assert!(
            est.kpt_star < 3.0,
            "KPT* = {} should be near 1 on a dead graph",
            est.kpt_star
        );
    }

    #[test]
    fn ept_estimate_reflects_graph_density() {
        let g = wc_graph(19);
        let mut rng = Rng::seed_from_u64(20);
        let est = estimate_kpt(&g, &IndependentCascade, 5, 1.0, &mut rng);
        // EPT is at least the average in-degree of a uniform root's
        // neighbourhood's root itself: every RR set has width >= indeg(root)
        // ... so the average must be positive on this connected-ish graph.
        assert!(est.ept_estimate() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_trivial_graph() {
        let g = tim_graph::GraphBuilder::new(1).build();
        let mut rng = Rng::seed_from_u64(21);
        estimate_kpt(&g, &IndependentCascade, 1, 1.0, &mut rng);
    }
}
