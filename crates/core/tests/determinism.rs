//! Determinism regression: RR-set generation is a pure function of
//! (graph content, θ, seed) — never of the thread count and never of the
//! graph's backing. The shard-prefix contract that makes parallel runs
//! byte-identical to serial runs must hold when the CSR is a zero-copy
//! `MmapCsr` view just as it does on the heap.

use tim_core::parallel::generate_rr_sets;
use tim_core::TimPlus;
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, snapshot, weights, Graph, MmapCsr};

fn wc_graph(n: usize, seed: u64) -> Graph {
    let mut g = gen::barabasi_albert(n, 3, 0.0, seed);
    weights::assign_weighted_cascade(&mut g);
    g
}

/// Saves `g` as a v2 snapshot in a fresh temp dir and maps it.
fn mapped(g: &Graph, tag: &str) -> (MmapCsr, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("tim_core_det_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.timg");
    let labels: Vec<u64> = (0..g.n() as u64).collect();
    snapshot::save_snapshot_v2(g, &labels, &path).unwrap();
    (MmapCsr::open(&path).unwrap(), dir)
}

#[test]
fn parallel_rr_sets_over_mmap_match_the_serial_heap_run() {
    let g = wc_graph(200, 3);
    let (view, dir) = mapped(&g, "rr");
    let (theta, seed) = (4_000u64, 17u64);

    // Ground truth: the serial heap run.
    let (heap, heap_stats) = generate_rr_sets(&g, &IndependentCascade, theta, seed, 1);

    for threads in [1usize, 4, 8] {
        let (mm, mm_stats) = generate_rr_sets(&view, &IndependentCascade, theta, seed, threads);
        assert_eq!(
            heap.raw_offsets(),
            mm.raw_offsets(),
            "RR-set boundaries diverged over mmap at {threads} threads"
        );
        assert_eq!(
            heap.raw_data(),
            mm.raw_data(),
            "RR-set members diverged over mmap at {threads} threads"
        );
        assert_eq!(heap_stats.total_width, mm_stats.total_width);
        assert_eq!(heap_stats.total_draws, mm_stats.total_draws);
        assert_eq!(heap_stats.total_nodes, mm_stats.total_nodes);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_pipeline_over_mmap_matches_heap_across_thread_counts() {
    let g = wc_graph(150, 5);
    let (view, dir) = mapped(&g, "pipeline");

    let run_heap = TimPlus::new(IndependentCascade)
        .epsilon(0.9)
        .seed(11)
        .threads(1)
        .run(&g, 6);
    for threads in [1usize, 4, 8] {
        let run_mm = TimPlus::new(IndependentCascade)
            .epsilon(0.9)
            .seed(11)
            .threads(threads)
            .run(&view, 6);
        assert_eq!(run_heap.seeds, run_mm.seeds, "{threads} threads");
        assert_eq!(run_heap.theta, run_mm.theta, "{threads} threads");
        assert_eq!(
            run_heap.estimated_spread, run_mm.estimated_spread,
            "{threads} threads (must be bit-identical, not just close)"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
