//! Property tests for `shard_layout` prefix-composability — the
//! invariant the warm-pool engine, the serving pool caches, and the
//! multi-graph catalog all rest on: a pool sampled at θ contains,
//! shard-aligned, exactly the sets of any θ′ ≤ θ run. That holds iff,
//! for every θ′ ≤ θ, (1) each shard's count is non-decreasing from θ′
//! to θ and (2) each layout sums to its θ. Random pairs here complement
//! the exhaustive-small-θ unit test in `tim_core::parallel`.

use proptest::prelude::*;
use tim_core::parallel::{shard_layout, SHARDS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn layout_sums_to_theta_and_is_bounded(theta in 0u64..5_000_000) {
        let counts = shard_layout(theta);
        prop_assert_eq!(counts.iter().sum::<u64>(), theta);
        prop_assert!(counts.len() as u64 <= SHARDS);
        prop_assert!(!counts.is_empty());
        // Balance: shards never differ by more than one set.
        let (min, max) = (
            counts.iter().min().copied().unwrap_or(0),
            counts.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "layout unbalanced: min {min}, max {max}");
    }

    #[test]
    fn every_smaller_theta_is_a_shard_aligned_prefix(
        theta in 1u64..5_000_000,
        frac in 0.0f64..1.0,
    ) {
        // θ′ ≤ θ drawn over the full range, including the θ′ = θ and
        // small-θ′ edges.
        let theta_prime = (theta as f64 * frac) as u64;
        let big = shard_layout(theta);
        let small = shard_layout(theta_prime);
        prop_assert_eq!(small.iter().sum::<u64>(), theta_prime);
        prop_assert!(small.len() <= big.len());
        for (i, &s) in small.iter().enumerate() {
            prop_assert!(
                s <= big[i],
                "shard {i} shrank from {} to {} (theta {} -> {})",
                s, big[i], theta_prime, theta
            );
        }
    }

    #[test]
    fn growing_theta_by_one_adds_exactly_one_set_to_one_shard(
        theta in 0u64..1_000_000,
    ) {
        let a = shard_layout(theta);
        let b = shard_layout(theta + 1);
        let sum_a: u64 = a.iter().sum();
        let sum_b: u64 = b.iter().sum();
        prop_assert_eq!(sum_b, sum_a + 1);
        // Compare shard-wise (a may be shorter when theta < SHARDS).
        let grew: usize = (0..b.len())
            .filter(|&i| b[i] != a.get(i).copied().unwrap_or(0))
            .count();
        prop_assert_eq!(grew, 1, "exactly one shard gains the new set");
        for (i, &count) in b.iter().enumerate() {
            let prev = a.get(i).copied().unwrap_or(0);
            prop_assert!(count >= prev, "shard {i} shrank");
            prop_assert!(count - prev <= 1, "shard {i} grew by more than one");
        }
    }
}
