//! Property tests for triggering-set sampling and simulation engines.

use proptest::prelude::*;
use tim_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold, SimWorkspace};
use tim_graph::{gen, weights, Graph, NodeId};
use tim_rng::Xoshiro256pp as Rng;

fn arb_weighted_graph() -> impl Strategy<Value = Graph> {
    (2usize..50, 1usize..4, 0u64..300, prop::bool::ANY).prop_map(
        |(n, density, seed, lt_weights)| {
            let m = (n * density).min(n * (n - 1));
            let mut g = gen::erdos_renyi_gnm(n, m, seed);
            if lt_weights {
                weights::assign_lt_normalized(&mut g, seed);
            } else {
                weights::assign_weighted_cascade(&mut g);
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn triggering_sets_are_subsets_of_in_neighbors(
        g in arb_weighted_graph(),
        node_pick in 0u32..50,
        seed in 0u64..1000,
    ) {
        let v = node_pick % g.n() as u32;
        let mut rng = Rng::seed_from_u64(seed);
        let mut buf: Vec<NodeId> = Vec::new();
        for _ in 0..20 {
            buf.clear();
            IndependentCascade.sample_triggering_set(&g, v, &mut rng, &mut buf);
            for &u in &buf {
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
            // No duplicates.
            let mut s = buf.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), buf.len());

            buf.clear();
            LinearThreshold.sample_triggering_set(&g, v, &mut rng, &mut buf);
            prop_assert!(buf.len() <= 1, "LT triggering set must be 0/1-sized");
            for &u in &buf {
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn activated_list_matches_simulation_count(
        g in arb_weighted_graph(),
        seed in 0u64..1000,
    ) {
        let seeds: Vec<NodeId> = vec![0];
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..10 {
            let c_ic = ws.simulate_ic(&g, &seeds, &mut rng);
            prop_assert_eq!(c_ic as usize, ws.activated().len());
            let c_lt = ws.simulate_lt(&g, &seeds, &mut rng);
            prop_assert_eq!(c_lt as usize, ws.activated().len());
            let c_tr = ws.simulate_triggering(&IndependentCascade, &g, &seeds, &mut rng);
            prop_assert_eq!(c_tr as usize, ws.activated().len());
        }
    }

    #[test]
    fn activated_nodes_are_unique_and_include_seeds(
        g in arb_weighted_graph(),
        seed in 0u64..1000,
    ) {
        let seeds: Vec<NodeId> = vec![0, (g.n() as u32 - 1).min(4)];
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(seed);
        ws.simulate_ic(&g, &seeds, &mut rng);
        let act: Vec<NodeId> = ws.activated().to_vec();
        let mut sorted = act.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), act.len(), "duplicate activations");
        for &s in &seeds {
            prop_assert!(act.contains(&s));
        }
    }

    #[test]
    fn simulation_never_exceeds_graph_size(
        g in arb_weighted_graph(),
        seed in 0u64..1000,
    ) {
        let seeds: Vec<NodeId> = (0..g.n().min(3) as u32).collect();
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..10 {
            let c = LinearThreshold.simulate(&mut ws, &g, &seeds, &mut rng);
            prop_assert!(c as usize <= g.n());
            prop_assert!(c as usize >= seeds.len());
        }
    }
}
