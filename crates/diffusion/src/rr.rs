//! Random reverse-reachable (RR) set sampling.
//!
//! An RR set for node `v` (Definition 1) is the set of nodes that can reach
//! `v` in a random live-edge graph; a *random* RR set (Definition 2) roots
//! at a uniformly random node. [`RrSampler`] implements the paper's
//! randomised reverse BFS (§3.1 "Implementation" and its §4.2 triggering
//! generalisation): dequeue a node, sample its triggering set, enqueue
//! unvisited members.
//!
//! The sampler owns its scratch memory (epoch-stamped visited array, BFS
//! queue), so generating millions of RR sets performs no allocation beyond
//! the output vector growth.

use crate::model::DiffusionModel;
use tim_graph::{CsrAccess, NodeId};
use tim_rng::{RandomSource, Rng};

/// Cost accounting for one generated RR set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RrStats {
    /// `w(R)` from Equation 1: the number of edges in `G` pointing to nodes
    /// in `R` (Σ in-degree over `R`). Drives `EPT` and `κ(R)`.
    pub width: u64,
    /// Number of random draws consumed — one per examined in-edge for IC,
    /// one per visited node for LT (the §7.2 cost asymmetry).
    pub draws: u64,
    /// `|R|`: number of nodes in the set (root included).
    pub nodes: u64,
}

impl RrStats {
    /// Nodes-plus-edges examined; the quantity RIS thresholds on (§2.3).
    #[inline]
    pub fn examined(&self) -> u64 {
        self.nodes + self.width
    }
}

/// Reusable sampler of random RR sets for a diffusion model.
///
/// ```
/// use tim_diffusion::{IndependentCascade, RrSampler};
/// use tim_graph::GraphBuilder;
/// use tim_rng::Rng;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge_with_probability(0, 1, 1.0);
/// b.add_edge_with_probability(1, 2, 1.0);
/// let g = b.build();
///
/// let mut sampler = RrSampler::new(IndependentCascade);
/// let mut rng = Rng::seed_from_u64(7);
/// let mut rr = Vec::new();
/// let stats = sampler.sample_for(&g, 2, &mut rng, &mut rr);
/// // Deterministic edges: the RR set of node 2 is all its ancestors.
/// assert_eq!(rr[0], 2);
/// assert_eq!(stats.nodes, 3);
/// ```
#[derive(Debug)]
pub struct RrSampler<M> {
    model: M,
    /// Epoch stamps marking visited nodes.
    visited: Vec<u32>,
    epoch: u32,
    /// Scratch for triggering-set samples.
    trig: Vec<NodeId>,
}

impl<M> RrSampler<M> {
    /// Creates a sampler; scratch arrays grow to the first graph's size.
    pub fn new(model: M) -> Self {
        Self {
            model,
            visited: Vec::new(),
            epoch: 0,
            trig: Vec::new(),
        }
    }

    /// The wrapped diffusion model.
    pub fn model(&self) -> &M {
        &self.model
    }

    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Generates the RR set rooted at `root`, appending its nodes (root
    /// first) to `out`. `out` is cleared first.
    ///
    /// Generic over the graph backing: the same randomness is consumed
    /// whether `graph` is a heap [`Graph`](tim_graph::Graph) or an
    /// [`MmapCsr`](tim_graph::MmapCsr) view, so RR sets are bit-identical
    /// across backings.
    pub fn sample_for<G: CsrAccess>(
        &mut self,
        graph: &G,
        root: NodeId,
        rng: &mut Rng,
        out: &mut Vec<NodeId>,
    ) -> RrStats
    where
        M: DiffusionModel<G>,
    {
        debug_assert!((root as usize) < graph.n(), "root out of range");
        self.begin(graph.n());
        out.clear();
        let mut stats = RrStats::default();

        self.visited[root as usize] = self.epoch;
        out.push(root);
        stats.nodes = 1;
        stats.width = graph.in_degree(root) as u64;
        stats.draws = self.model.draws_per_node(graph, root);

        // `out` doubles as the BFS queue: nodes are appended in visit order
        // and `head` walks it.
        let mut head = 0usize;
        while head < out.len() {
            let v = out[head];
            head += 1;
            self.trig.clear();
            self.model
                .sample_triggering_set(graph, v, rng, &mut self.trig);
            for i in 0..self.trig.len() {
                let u = self.trig[i];
                debug_assert!((u as usize) < graph.n());
                if self.visited[u as usize] != self.epoch {
                    self.visited[u as usize] = self.epoch;
                    out.push(u);
                    stats.nodes += 1;
                    stats.width += graph.in_degree(u) as u64;
                    stats.draws += self.model.draws_per_node(graph, u);
                }
            }
        }
        stats
    }

    /// Generates a random RR set (uniformly random root), appending its
    /// nodes to `out` and returning `(root, stats)`.
    pub fn sample_random<G: CsrAccess>(
        &mut self,
        graph: &G,
        rng: &mut Rng,
        out: &mut Vec<NodeId>,
    ) -> (NodeId, RrStats)
    where
        M: DiffusionModel<G>,
    {
        assert!(graph.n() > 0, "cannot sample an RR set on an empty graph");
        let root = rng.next_index(graph.n()) as NodeId;
        let stats = self.sample_for(graph, root, rng, out);
        (root, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IndependentCascade, LinearThreshold};
    use tim_graph::{weights, Graph, GraphBuilder};

    fn chain(p: f32) -> Graph {
        // 0 -> 1 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge_with_probability(i, i + 1, p);
        }
        b.build()
    }

    #[test]
    fn rr_set_contains_root_first() {
        let g = chain(1.0);
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(1);
        let mut out = Vec::new();
        s.sample_for(&g, 2, &mut rng, &mut out);
        assert_eq!(out[0], 2);
    }

    #[test]
    fn deterministic_chain_rr_set_is_all_ancestors() {
        let g = chain(1.0);
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(2);
        let mut out = Vec::new();
        let stats = s.sample_for(&g, 3, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(stats.nodes, 4);
        // Width: each of 1, 2, 3 has in-degree 1; node 0 has 0.
        assert_eq!(stats.width, 3);
    }

    #[test]
    fn zero_probability_rr_set_is_singleton() {
        let g = chain(0.0);
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(3);
        let mut out = Vec::new();
        let stats = s.sample_for(&g, 3, &mut rng, &mut out);
        assert_eq!(out, vec![3]);
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.width, 1);
    }

    #[test]
    fn width_equals_sum_of_in_degrees() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(100, 500, 4);
        weights::assign_constant(&mut g, 0.4);
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(5);
        let mut out = Vec::new();
        for _ in 0..200 {
            let (_, stats) = s.sample_random(&g, &mut rng, &mut out);
            let expect: u64 = out.iter().map(|&v| g.in_degree(v) as u64).sum();
            assert_eq!(stats.width, expect);
            assert_eq!(stats.nodes, out.len() as u64);
        }
    }

    #[test]
    fn rr_set_has_no_duplicates() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(50, 400, 6);
        weights::assign_constant(&mut g, 0.5);
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(7);
        let mut out = Vec::new();
        for _ in 0..200 {
            s.sample_random(&g, &mut rng, &mut out);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len(), "duplicates in RR set");
        }
    }

    #[test]
    fn rr_membership_frequency_matches_activation_probability() {
        // Single edge 0 -p-> 1. An RR set for root 1 contains node 0 with
        // probability p (Lemma 2 with S = {0}, v = 1).
        let p = 0.35f32;
        let mut b = GraphBuilder::new(2);
        b.add_edge_with_probability(0, 1, p);
        let g = b.build();
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(8);
        let mut out = Vec::new();
        let trials = 100_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample_for(&g, 1, &mut rng, &mut out);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - p as f64).abs() < 0.01, "freq {freq} vs p {p}");
    }

    #[test]
    fn lt_rr_set_is_a_reverse_walk() {
        // With normalised LT weights every node picks exactly one
        // in-neighbour, so the RR set is a path that stops only at a node
        // with no in-edges or a cycle closure.
        let mut g = tim_graph::gen::erdos_renyi_gnm(40, 200, 9);
        weights::assign_lt_normalized(&mut g, 10);
        let mut s = RrSampler::new(LinearThreshold);
        let mut rng = Rng::seed_from_u64(11);
        let mut out = Vec::new();
        for _ in 0..100 {
            let (_, stats) = s.sample_random(&g, &mut rng, &mut out);
            // A reverse walk consumes exactly one draw per visited node.
            assert_eq!(stats.draws, stats.nodes);
            // Every non-terminal hop must be a real edge.
            for w in out.windows(2) {
                assert!(
                    g.in_neighbors(w[0]).contains(&w[1]),
                    "walk steps must follow in-edges"
                );
            }
        }
    }

    #[test]
    fn draws_accounting_differs_between_models() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(100, 800, 12);
        weights::assign_weighted_cascade(&mut g);
        let mut rng = Rng::seed_from_u64(13);
        let mut out = Vec::new();

        let mut ic = RrSampler::new(IndependentCascade);
        let mut ic_draws = 0u64;
        let mut ic_nodes = 0u64;
        for _ in 0..200 {
            let (_, st) = ic.sample_random(&g, &mut rng, &mut out);
            ic_draws += st.draws;
            ic_nodes += st.nodes;
        }
        // IC consumes one draw per examined in-edge == width.
        assert!(
            ic_draws >= ic_nodes,
            "IC draws {ic_draws} < nodes {ic_nodes}"
        );

        let mut lt = RrSampler::new(LinearThreshold);
        for _ in 0..200 {
            let (_, st) = lt.sample_random(&g, &mut rng, &mut out);
            assert_eq!(st.draws, st.nodes);
        }
    }

    #[test]
    fn examined_is_nodes_plus_width() {
        let st = RrStats {
            width: 10,
            draws: 3,
            nodes: 4,
        };
        assert_eq!(st.examined(), 14);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn sampling_empty_graph_panics() {
        let g = GraphBuilder::new(0).build();
        let mut s = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(14);
        let mut out = Vec::new();
        s.sample_random(&g, &mut rng, &mut out);
    }
}
