//! The triggering-model abstraction and its two canonical instances.

use tim_graph::{CsrAccess, Graph, MmapCsr, NodeId};
use tim_rng::{RandomSource, Rng};

/// A diffusion model in triggering form (paper §4.2).
///
/// A model is fully specified by, for each node `v`, a distribution `T(v)`
/// over subsets of `v`'s in-neighbours. An influence propagation process
/// samples one triggering set per node; `v` activates at timestamp `i + 1`
/// iff some node in its triggering set is active at timestamp `i`.
///
/// Implementors provide [`sample_triggering_set`]; forward simulation has a
/// generic default in terms of triggering sets, which `IC` and `LT`
/// override with equivalent but faster edge/threshold formulations.
///
/// The trait is parameterized over the graph backing `G` (any
/// [`CsrAccess`]), defaulting to the heap [`Graph`] so existing
/// `M: DiffusionModel` bounds keep their meaning; the canonical models
/// implement it for **every** backing, which is how the same sampling
/// code runs over heap vectors and mmap views with identical randomness
/// consumption (and therefore identical RR sets).
///
/// [`sample_triggering_set`]: DiffusionModel::sample_triggering_set
pub trait DiffusionModel<G: CsrAccess = Graph>: Sync {
    /// Samples one triggering set for `node`, appending its members
    /// (a subset of `graph.in_neighbors(node)`) to `out`.
    fn sample_triggering_set(&self, graph: &G, node: NodeId, rng: &mut Rng, out: &mut Vec<NodeId>);

    /// Expected number of random draws per visited node during reverse
    /// sampling, used only for cost accounting: IC consumes one draw per
    /// in-edge, LT one draw per node (the §7.2 observation for why LT runs
    /// faster on edge-heavy graphs).
    fn draws_per_node(&self, graph: &G, node: NodeId) -> u64 {
        graph.in_degree(node) as u64
    }

    /// Runs one forward propagation from `seeds`, returning the number of
    /// activated nodes (one Monte Carlo sample of `I(S)`).
    ///
    /// The default implementation simulates the triggering process
    /// directly; [`IndependentCascade`] and [`LinearThreshold`] override it
    /// with distribution-equivalent fast paths.
    fn simulate(
        &self,
        ws: &mut crate::forward::SimWorkspace,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        ws.simulate_triggering(self, graph, seeds, rng)
    }

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

impl<G: CsrAccess, M: DiffusionModel<G> + ?Sized> DiffusionModel<G> for &M {
    #[inline]
    fn sample_triggering_set(&self, graph: &G, node: NodeId, rng: &mut Rng, out: &mut Vec<NodeId>) {
        (**self).sample_triggering_set(graph, node, rng, out)
    }

    #[inline]
    fn draws_per_node(&self, graph: &G, node: NodeId) -> u64 {
        (**self).draws_per_node(graph, node)
    }

    fn simulate(
        &self,
        ws: &mut crate::forward::SimWorkspace,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        (**self).simulate(ws, graph, seeds, rng)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A model usable with every graph backing the serving stack offers.
///
/// Engine and server code that holds a
/// [`GraphStore`](tim_graph::GraphStore) needs its model to sample over
/// the heap [`Graph`] *and* the [`MmapCsr`] view; this alias bundles the
/// two bounds so that requirement reads as one. Blanket-implemented, so
/// every model generic over [`CsrAccess`] (IC, LT, [`ModelKind`])
/// qualifies automatically.
pub trait BackingModel: DiffusionModel<Graph> + DiffusionModel<MmapCsr> {
    /// The model's display name. Equivalent to
    /// [`DiffusionModel::name`], which is ambiguous to call directly
    /// under the dual bound (names are backing-independent).
    fn model_name(&self) -> &'static str {
        DiffusionModel::<Graph>::name(self)
    }
}

impl<M: DiffusionModel<Graph> + DiffusionModel<MmapCsr>> BackingModel for M {}

/// The Independent Cascade model (paper §2.1).
///
/// Each edge `e = (u, v)` is live independently with probability `p(e)`;
/// equivalently, `v`'s triggering set contains each in-neighbour `u`
/// independently with probability `p(u, v)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndependentCascade;

impl<G: CsrAccess> DiffusionModel<G> for IndependentCascade {
    #[inline]
    fn sample_triggering_set(&self, graph: &G, node: NodeId, rng: &mut Rng, out: &mut Vec<NodeId>) {
        let nbrs = graph.in_neighbors(node);
        let probs = graph.in_probabilities(node);
        for (&u, &p) in nbrs.iter().zip(probs) {
            if rng.bernoulli_f32(p) {
                out.push(u);
            }
        }
    }

    fn simulate(
        &self,
        ws: &mut crate::forward::SimWorkspace,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        ws.simulate_ic(graph, seeds, rng)
    }

    fn name(&self) -> &'static str {
        "IC"
    }
}

/// The Linear Threshold model (paper §7.1), in triggering form.
///
/// Every sample from `T(v)` is either empty or a singleton: in-neighbour
/// `u` is chosen with probability `w(u, v)`, and no one is chosen with the
/// leftover probability `1 − Σ w`. The paper's LT setting normalises each
/// node's in-weights to sum to exactly 1
/// ([`assign_lt_normalized`](tim_graph::weights::assign_lt_normalized)),
/// in which case the triggering set is always a singleton.
///
/// Note this consumes **one** random draw per node, versus one per in-edge
/// for IC — the reason TIM runs measurably faster under LT (§7.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearThreshold;

impl<G: CsrAccess> DiffusionModel<G> for LinearThreshold {
    #[inline]
    fn sample_triggering_set(&self, graph: &G, node: NodeId, rng: &mut Rng, out: &mut Vec<NodeId>) {
        let nbrs = graph.in_neighbors(node);
        if nbrs.is_empty() {
            return;
        }
        let probs = graph.in_probabilities(node);
        let x = rng.next_f64();
        let mut acc = 0.0f64;
        for (&u, &w) in nbrs.iter().zip(probs) {
            acc += w as f64;
            if x < acc {
                out.push(u);
                return;
            }
        }
        // x >= total weight: the triggering set is empty this time.
    }

    fn draws_per_node(&self, _graph: &G, _node: NodeId) -> u64 {
        1
    }

    fn simulate(
        &self,
        ws: &mut crate::forward::SimWorkspace,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        ws.simulate_lt(graph, seeds, rng)
    }

    fn name(&self) -> &'static str {
        "LT"
    }
}

/// Either canonical model, selected at runtime.
///
/// Generic code (algorithms, serving catalogs) is parameterized over one
/// `M: DiffusionModel`; a multi-tenant server that hosts IC graphs *and*
/// LT graphs in the same process needs a single type covering both.
/// `ModelKind` delegates every operation to the wrapped model — results
/// are bit-identical to using [`IndependentCascade`] /
/// [`LinearThreshold`] directly, at the cost of one enum dispatch per
/// sampled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The Independent Cascade model (tag `"ic"`).
    IndependentCascade,
    /// The Linear Threshold model (tag `"lt"`).
    LinearThreshold,
}

impl ModelKind {
    /// Resolves a wire/CLI model tag (`"ic"` / `"lt"`, case-insensitive).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "ic" => Some(ModelKind::IndependentCascade),
            "lt" => Some(ModelKind::LinearThreshold),
            _ => None,
        }
    }

    /// The canonical tag (`"ic"` / `"lt"`) — what pool provenance and
    /// graph specs use.
    pub fn tag(&self) -> &'static str {
        match self {
            ModelKind::IndependentCascade => "ic",
            ModelKind::LinearThreshold => "lt",
        }
    }
}

impl<G: CsrAccess> DiffusionModel<G> for ModelKind {
    #[inline]
    fn sample_triggering_set(&self, graph: &G, node: NodeId, rng: &mut Rng, out: &mut Vec<NodeId>) {
        match self {
            ModelKind::IndependentCascade => {
                IndependentCascade.sample_triggering_set(graph, node, rng, out)
            }
            ModelKind::LinearThreshold => {
                LinearThreshold.sample_triggering_set(graph, node, rng, out)
            }
        }
    }

    #[inline]
    fn draws_per_node(&self, graph: &G, node: NodeId) -> u64 {
        match self {
            ModelKind::IndependentCascade => {
                DiffusionModel::<G>::draws_per_node(&IndependentCascade, graph, node)
            }
            ModelKind::LinearThreshold => {
                DiffusionModel::<G>::draws_per_node(&LinearThreshold, graph, node)
            }
        }
    }

    fn simulate(
        &self,
        ws: &mut crate::forward::SimWorkspace,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        match self {
            ModelKind::IndependentCascade => IndependentCascade.simulate(ws, graph, seeds, rng),
            ModelKind::LinearThreshold => LinearThreshold.simulate(ws, graph, seeds, rng),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ModelKind::IndependentCascade => DiffusionModel::<G>::name(&IndependentCascade),
            ModelKind::LinearThreshold => DiffusionModel::<G>::name(&LinearThreshold),
        }
    }
}

/// Wraps a closure as a triggering distribution, for custom models.
///
/// The closure receives `(graph, node, rng, out)` and must append a subset
/// of `graph.in_neighbors(node)` to `out`. See
/// `examples/model_comparison.rs` for a decaying-attention model built this
/// way.
#[derive(Clone)]
pub struct CustomTriggering<F> {
    f: F,
    name: &'static str,
}

impl<F> CustomTriggering<F>
where
    F: Fn(&Graph, NodeId, &mut Rng, &mut Vec<NodeId>) + Sync,
{
    /// Creates a custom model with a display name.
    pub fn new(name: &'static str, f: F) -> Self {
        Self { f, name }
    }
}

impl<F> DiffusionModel for CustomTriggering<F>
where
    F: Fn(&Graph, NodeId, &mut Rng, &mut Vec<NodeId>) + Sync,
{
    #[inline]
    fn sample_triggering_set(
        &self,
        graph: &Graph,
        node: NodeId,
        rng: &mut Rng,
        out: &mut Vec<NodeId>,
    ) {
        (self.f)(graph, node, rng, out);
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tim_graph::{weights, GraphBuilder};

    /// Star with `leaves -> 0`, all probabilities `p`.
    fn in_star(leaves: u32, p: f32) -> Graph {
        let mut b = GraphBuilder::new(leaves as usize + 1);
        for u in 1..=leaves {
            b.add_edge_with_probability(u, 0, p);
        }
        b.build()
    }

    #[test]
    fn ic_triggering_set_size_matches_binomial_mean() {
        let g = in_star(10, 0.3);
        let mut rng = Rng::seed_from_u64(1);
        let mut buf = Vec::new();
        let trials = 20_000;
        let mut total = 0usize;
        for _ in 0..trials {
            buf.clear();
            IndependentCascade.sample_triggering_set(&g, 0, &mut rng, &mut buf);
            total += buf.len();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}, expected 3.0");
    }

    #[test]
    fn ic_members_are_in_neighbors() {
        let g = in_star(5, 0.8);
        let mut rng = Rng::seed_from_u64(2);
        let mut buf = Vec::new();
        for _ in 0..100 {
            buf.clear();
            IndependentCascade.sample_triggering_set(&g, 0, &mut rng, &mut buf);
            for &u in &buf {
                assert!(g.in_neighbors(0).contains(&u));
            }
        }
    }

    #[test]
    fn lt_with_normalized_weights_always_picks_exactly_one() {
        let mut g = in_star(6, 0.0);
        weights::assign_lt_normalized(&mut g, 3);
        let mut rng = Rng::seed_from_u64(3);
        let mut buf = Vec::new();
        for _ in 0..1000 {
            buf.clear();
            LinearThreshold.sample_triggering_set(&g, 0, &mut rng, &mut buf);
            assert_eq!(buf.len(), 1, "normalised LT must pick a singleton");
        }
    }

    #[test]
    fn lt_selection_frequency_tracks_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_probability(1, 0, 0.2);
        b.add_edge_with_probability(2, 0, 0.8);
        let g = b.build();
        let mut rng = Rng::seed_from_u64(4);
        let mut buf = Vec::new();
        let mut count2 = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            buf.clear();
            LinearThreshold.sample_triggering_set(&g, 0, &mut rng, &mut buf);
            assert_eq!(buf.len(), 1);
            if buf[0] == 2 {
                count2 += 1;
            }
        }
        let freq = count2 as f64 / trials as f64;
        assert!((freq - 0.8).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lt_subnormal_weights_can_pick_nobody() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_with_probability(1, 0, 0.3);
        let g = b.build();
        let mut rng = Rng::seed_from_u64(5);
        let mut buf = Vec::new();
        let mut empties = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            buf.clear();
            LinearThreshold.sample_triggering_set(&g, 0, &mut rng, &mut buf);
            if buf.is_empty() {
                empties += 1;
            }
        }
        let freq = empties as f64 / trials as f64;
        assert!((freq - 0.7).abs() < 0.01, "empty freq {freq}");
    }

    #[test]
    fn lt_no_in_neighbors_yields_empty_set() {
        let g = in_star(3, 0.5);
        let mut rng = Rng::seed_from_u64(6);
        let mut buf = Vec::new();
        LinearThreshold.sample_triggering_set(&g, 1, &mut rng, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn draws_per_node_reflects_model_cost() {
        let g = in_star(7, 0.5);
        assert_eq!(IndependentCascade.draws_per_node(&g, 0), 7);
        assert_eq!(LinearThreshold.draws_per_node(&g, 0), 1);
    }

    #[test]
    fn custom_triggering_dispatches_closure() {
        let g = in_star(4, 1.0);
        // "Always everyone" — the deterministic cascade.
        let model = CustomTriggering::new(
            "all-in",
            |g: &Graph, v, _rng: &mut Rng, out: &mut Vec<NodeId>| {
                out.extend_from_slice(g.in_neighbors(v));
            },
        );
        let mut rng = Rng::seed_from_u64(7);
        let mut buf = Vec::new();
        model.sample_triggering_set(&g, 0, &mut rng, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(model.name(), "all-in");
    }

    #[test]
    fn model_names() {
        assert_eq!(IndependentCascade.model_name(), "IC");
        assert_eq!(LinearThreshold.model_name(), "LT");
    }

    #[test]
    fn model_kind_resolves_tags_and_matches_the_wrapped_models() {
        assert_eq!(
            ModelKind::from_tag("ic"),
            Some(ModelKind::IndependentCascade)
        );
        assert_eq!(ModelKind::from_tag("LT"), Some(ModelKind::LinearThreshold));
        assert_eq!(ModelKind::from_tag("bogus"), None);
        assert_eq!(ModelKind::IndependentCascade.tag(), "ic");
        assert_eq!(ModelKind::LinearThreshold.tag(), "lt");
        assert_eq!(ModelKind::IndependentCascade.model_name(), "IC");

        // Bit-identical sampling: the enum and the concrete model consume
        // the same randomness and produce the same triggering sets.
        let mut g = in_star(8, 0.0);
        weights::assign_lt_normalized(&mut g, 3);
        for (kind, seed) in [
            (ModelKind::IndependentCascade, 11u64),
            (ModelKind::LinearThreshold, 12),
        ] {
            let mut rng_a = Rng::seed_from_u64(seed);
            let mut rng_b = Rng::seed_from_u64(seed);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for _ in 0..50 {
                a.clear();
                b.clear();
                kind.sample_triggering_set(&g, 0, &mut rng_a, &mut a);
                match kind {
                    ModelKind::IndependentCascade => {
                        IndependentCascade.sample_triggering_set(&g, 0, &mut rng_b, &mut b)
                    }
                    ModelKind::LinearThreshold => {
                        LinearThreshold.sample_triggering_set(&g, 0, &mut rng_b, &mut b)
                    }
                }
                assert_eq!(a, b, "{kind:?}");
            }
        }
        assert_eq!(ModelKind::LinearThreshold.draws_per_node(&g, 0), 1);
        assert_eq!(ModelKind::IndependentCascade.draws_per_node(&g, 0), 8);
    }
}
