//! Monte Carlo estimation of expected spread `E[I(S)]`.
//!
//! The paper estimates ground-truth spreads by averaging 10⁵ forward
//! simulations (§7.2). [`SpreadEstimator`] does the same, sharding runs
//! across threads with independent `jump()`-separated RNG streams so the
//! result is **deterministic given the seed** regardless of thread count.

use crate::forward::SimWorkspace;
use crate::model::DiffusionModel;
use tim_graph::{Graph, NodeId};
use tim_rng::Rng;

/// Number of independent RNG shards; fixed so results do not depend on the
/// machine's thread count.
const SHARDS: usize = 64;

/// A configurable Monte Carlo spread estimator.
///
/// ```
/// # use tim_diffusion::{SpreadEstimator, IndependentCascade};
/// # use tim_graph::{GraphBuilder, weights};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge_with_probability(0, 1, 1.0);
/// b.add_edge_with_probability(1, 2, 1.0);
/// let g = b.build();
/// let est = SpreadEstimator::new(IndependentCascade).runs(100).seed(7);
/// assert_eq!(est.estimate(&g, &[0]), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SpreadEstimator<M> {
    model: M,
    runs: usize,
    seed: u64,
    threads: usize,
}

impl<M: DiffusionModel + Sync> SpreadEstimator<M> {
    /// Creates an estimator with the paper's default of 10 000 runs,
    /// seed 0, and one thread per available core.
    pub fn new(model: M) -> Self {
        Self {
            model,
            runs: 10_000,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }

    /// Sets the number of Monte Carlo runs.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "SpreadEstimator: runs must be positive");
        self.runs = runs;
        self
    }

    /// Sets the RNG seed. Estimates are deterministic given the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the worker-thread count (1 forces single-threaded execution).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "SpreadEstimator: threads must be positive");
        self.threads = threads;
        self
    }

    /// Estimates `E[I(S)]` for the seed set `seeds`.
    pub fn estimate(&self, graph: &Graph, seeds: &[NodeId]) -> f64 {
        self.estimate_with_stderr(graph, seeds).0
    }

    /// Estimates `E[I(S)]` and the standard error of the estimate.
    pub fn estimate_with_stderr(&self, graph: &Graph, seeds: &[NodeId]) -> (f64, f64) {
        for &s in seeds {
            assert!((s as usize) < graph.n(), "seed {s} out of range");
        }
        if seeds.is_empty() || graph.n() == 0 {
            return (0.0, 0.0);
        }

        // Pre-split per-shard RNG streams from the base seed.
        let mut base = Rng::seed_from_u64(self.seed);
        let shards = SHARDS.min(self.runs);
        let mut shard_rngs: Vec<Rng> = (0..shards).map(|_| base.split_off()).collect();
        // Distribute runs over shards as evenly as possible.
        let per = self.runs / shards;
        let extra = self.runs % shards;
        let shard_runs: Vec<usize> = (0..shards).map(|i| per + usize::from(i < extra)).collect();

        let mut sums = vec![(0.0f64, 0.0f64); shards];
        let threads = self.threads.min(shards).max(1);
        if threads == 1 {
            let mut ws = SimWorkspace::new();
            for (i, rng) in shard_rngs.iter_mut().enumerate() {
                sums[i] = run_shard(&self.model, graph, seeds, shard_runs[i], rng, &mut ws);
            }
        } else {
            let chunk = shards.div_ceil(threads);
            std::thread::scope(|scope| {
                let model = &self.model;
                for ((rng_chunk, runs_chunk), sum_chunk) in shard_rngs
                    .chunks_mut(chunk)
                    .zip(shard_runs.chunks(chunk))
                    .zip(sums.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        let mut ws = SimWorkspace::new();
                        for ((rng, &n_runs), slot) in rng_chunk
                            .iter_mut()
                            .zip(runs_chunk)
                            .zip(sum_chunk.iter_mut())
                        {
                            *slot = run_shard(model, graph, seeds, n_runs, rng, &mut ws);
                        }
                    });
                }
            });
        }

        let total: f64 = sums.iter().map(|s| s.0).sum();
        let total_sq: f64 = sums.iter().map(|s| s.1).sum();
        let n = self.runs as f64;
        let mean = total / n;
        let var = (total_sq / n - mean * mean).max(0.0);
        (mean, (var / n).sqrt())
    }
}

fn run_shard<M: DiffusionModel>(
    model: &M,
    graph: &Graph,
    seeds: &[NodeId],
    runs: usize,
    rng: &mut Rng,
    ws: &mut SimWorkspace,
) -> (f64, f64) {
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..runs {
        let x = model.simulate(ws, graph, seeds, rng) as f64;
        sum += x;
        sum_sq += x * x;
    }
    (sum, sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IndependentCascade, LinearThreshold};
    use tim_graph::{weights, GraphBuilder};

    #[test]
    fn empty_seeds_give_zero() {
        let g = tim_graph::gen::erdos_renyi_gnm(10, 20, 1);
        let est = SpreadEstimator::new(IndependentCascade).runs(10);
        assert_eq!(est.estimate(&g, &[]), 0.0);
    }

    #[test]
    fn deterministic_graph_gives_exact_spread() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_with_probability(0, 1, 1.0);
        b.add_edge_with_probability(1, 2, 1.0);
        b.add_edge_with_probability(2, 3, 1.0);
        let g = b.build();
        let est = SpreadEstimator::new(IndependentCascade).runs(50).seed(2);
        assert_eq!(est.estimate(&g, &[0]), 4.0);
        assert_eq!(est.estimate(&g, &[3]), 1.0);
    }

    #[test]
    fn matches_closed_form_on_fork() {
        // 0 -> 1 (p=0.5), 0 -> 2 (p=0.5): E[I({0})] = 1 + 0.5 + 0.5 = 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_probability(0, 1, 0.5);
        b.add_edge_with_probability(0, 2, 0.5);
        let g = b.build();
        let est = SpreadEstimator::new(IndependentCascade)
            .runs(100_000)
            .seed(3);
        let (mean, se) = est.estimate_with_stderr(&g, &[0]);
        assert!(
            (mean - 2.0).abs() < 5.0 * se.max(0.005),
            "mean {mean}, se {se}"
        );
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(200, 1000, 4);
        weights::assign_weighted_cascade(&mut g);
        let base = SpreadEstimator::new(IndependentCascade).runs(2000).seed(5);
        let single = base.clone().threads(1).estimate(&g, &[0, 1, 2]);
        let multi = base.clone().threads(8).estimate(&g, &[0, 1, 2]);
        assert_eq!(single, multi);
    }

    #[test]
    fn result_is_seed_deterministic() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(100, 500, 6);
        weights::assign_weighted_cascade(&mut g);
        let a = SpreadEstimator::new(LinearThreshold)
            .runs(500)
            .seed(7)
            .estimate(&g, &[3]);
        let b = SpreadEstimator::new(LinearThreshold)
            .runs(500)
            .seed(7)
            .estimate(&g, &[3]);
        let c = SpreadEstimator::new(LinearThreshold)
            .runs(500)
            .seed(8)
            .estimate(&g, &[3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn spread_is_at_least_seed_count_and_at_most_n() {
        let mut g = tim_graph::gen::barabasi_albert(300, 3, 0.0, 8);
        weights::assign_weighted_cascade(&mut g);
        let est = SpreadEstimator::new(IndependentCascade).runs(300).seed(9);
        let spread = est.estimate(&g, &[0, 5, 10]);
        assert!(spread >= 3.0);
        assert!(spread <= 300.0);
    }

    #[test]
    fn stderr_shrinks_with_more_runs() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(200, 1200, 10);
        weights::assign_constant(&mut g, 0.15);
        let (_, se_small) = SpreadEstimator::new(IndependentCascade)
            .runs(200)
            .seed(11)
            .estimate_with_stderr(&g, &[0]);
        let (_, se_big) = SpreadEstimator::new(IndependentCascade)
            .runs(20_000)
            .seed(11)
            .estimate_with_stderr(&g, &[0]);
        assert!(
            se_big < se_small,
            "stderr should shrink: {se_small} -> {se_big}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = tim_graph::gen::erdos_renyi_gnm(10, 20, 12);
        SpreadEstimator::new(IndependentCascade)
            .runs(10)
            .estimate(&g, &[99]);
    }
}
