//! Influence-diffusion models and their two fundamental operations.
//!
//! Every algorithm in this workspace reduces to two primitives over a
//! [`DiffusionModel`]:
//!
//! 1. **Forward simulation** (Kempe et al., §2.2 of the paper): run the
//!    propagation process from a seed set `S` and count activations —
//!    [`SpreadEstimator`] averages many such runs to estimate `E[I(S)]`.
//! 2. **Reverse-reachable (RR) set sampling** (Borgs et al., Definitions 1
//!    and 2): sample a random node `v` and collect everything that can
//!    reach `v` in a random live-edge graph — [`RrSampler`].
//!
//! The paper's Lemma 2 (and its triggering-model extension, Lemma 9) states
//! that these two views agree: `Pr[S ∩ R ≠ ∅] = Pr[S activates v]`. The
//! integration tests verify this numerically, and
//! [`live_edge`] lets tests check it *exactly*, per sampled graph.
//!
//! Models implement the **triggering model** abstraction (§4.2): a node's
//! randomness is a sampled *triggering set* — a random subset of its
//! in-neighbours — and a node activates as soon as any member of its
//! triggering set is active. [`IndependentCascade`] and [`LinearThreshold`]
//! are provided; [`CustomTriggering`] wraps arbitrary user distributions.

mod forward;
pub mod live_edge;
mod model;
mod rr;
mod spread;

pub use forward::SimWorkspace;
pub use model::{
    BackingModel, CustomTriggering, DiffusionModel, IndependentCascade, LinearThreshold, ModelKind,
};
pub use rr::{RrSampler, RrStats};
pub use spread::SpreadEstimator;
