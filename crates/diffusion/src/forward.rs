//! Forward influence-propagation simulation.
//!
//! One simulation run plays out the propagation process of §2.1 from a seed
//! set and returns the number of nodes activated — one Monte Carlo sample
//! of `I(S)`. [`SimWorkspace`] owns all scratch memory so repeated runs
//! (Greedy does millions) allocate nothing.
//!
//! Three engines are provided:
//!
//! - [`simulate_ic`](SimWorkspace::simulate_ic) — per-out-edge coin flips,
//!   the classic IC process;
//! - [`simulate_lt`](SimWorkspace::simulate_lt) — lazily-sampled uniform
//!   thresholds with accumulated in-weights, the classic LT process;
//! - [`simulate_triggering`](SimWorkspace::simulate_triggering) — the
//!   general triggering process: each touched node samples its triggering
//!   set once per run, and activates when an active in-neighbour belongs to
//!   it. Works for any [`DiffusionModel`]; the IC/LT engines are
//!   distribution-equivalent fast paths (verified by tests).

use crate::model::DiffusionModel;
use std::collections::HashMap;
use tim_graph::{CsrAccess, NodeId};
use tim_rng::{RandomSource, Rng};

/// Reusable scratch state for forward simulations.
///
/// Epoch-stamped arrays make per-run initialisation O(|touched|) instead of
/// O(n).
#[derive(Debug, Default)]
pub struct SimWorkspace {
    /// Epoch stamp marking activated nodes.
    active: Vec<u32>,
    /// Epoch stamp marking nodes whose threshold/accumulator is initialised.
    touched: Vec<u32>,
    /// LT: activation threshold per touched node.
    threshold: Vec<f64>,
    /// LT: accumulated active in-weight per touched node.
    acc: Vec<f64>,
    epoch: u32,
    /// BFS frontier (index-advancing queue).
    queue: Vec<NodeId>,
    /// Scratch for triggering-set samples.
    trig: Vec<NodeId>,
}

impl SimWorkspace {
    /// Creates an empty workspace; arrays grow to the first graph's size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes activated by the most recent `simulate_*` call, in activation
    /// order (seeds first). Used by baselines (IRIE) that need per-node
    /// activation probabilities, not just counts.
    pub fn activated(&self) -> &[NodeId] {
        &self.queue
    }

    fn begin(&mut self, n: usize) {
        if self.active.len() < n {
            self.active.resize(n, 0);
            self.touched.resize(n, 0);
            self.threshold.resize(n, 0.0);
            self.acc.resize(n, 0.0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: clear and restart at epoch 1.
            self.active.iter_mut().for_each(|s| *s = 0);
            self.touched.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn activate(&mut self, v: NodeId) -> bool {
        let slot = &mut self.active[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            self.queue.push(v);
            true
        }
    }

    /// One IC propagation run; returns the number of activated nodes.
    pub fn simulate_ic<G: CsrAccess>(&mut self, graph: &G, seeds: &[NodeId], rng: &mut Rng) -> u32 {
        self.begin(graph.n());
        let mut count = 0u32;
        for &s in seeds {
            if self.activate(s) {
                count += 1;
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let nbrs = graph.out_neighbors(u);
            let probs = graph.out_probabilities(u);
            for (&v, &p) in nbrs.iter().zip(probs) {
                if self.active[v as usize] != self.epoch && rng.bernoulli_f32(p) {
                    self.active[v as usize] = self.epoch;
                    self.queue.push(v);
                    count += 1;
                }
            }
        }
        count
    }

    /// One LT propagation run; returns the number of activated nodes.
    ///
    /// Thresholds are uniform in `[0, 1)` and sampled lazily on first touch;
    /// a node activates when the total weight of its activated in-neighbours
    /// strictly exceeds its threshold, which matches the singleton
    /// triggering formulation in distribution.
    pub fn simulate_lt<G: CsrAccess>(&mut self, graph: &G, seeds: &[NodeId], rng: &mut Rng) -> u32 {
        self.begin(graph.n());
        let mut count = 0u32;
        for &s in seeds {
            if self.activate(s) {
                count += 1;
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let nbrs = graph.out_neighbors(u);
            let probs = graph.out_probabilities(u);
            for (&v, &w) in nbrs.iter().zip(probs) {
                let vi = v as usize;
                if self.active[vi] == self.epoch {
                    continue;
                }
                if self.touched[vi] != self.epoch {
                    self.touched[vi] = self.epoch;
                    self.threshold[vi] = rng.next_f64();
                    self.acc[vi] = 0.0;
                }
                self.acc[vi] += w as f64;
                if self.acc[vi] > self.threshold[vi] {
                    self.active[vi] = self.epoch;
                    self.queue.push(v);
                    count += 1;
                }
            }
        }
        count
    }

    /// One propagation run under an arbitrary triggering model.
    ///
    /// Each node touched by the frontier samples its triggering set exactly
    /// once per run (cached), so the run is equivalent to propagation on a
    /// fixed live-edge graph, as Definition 2 / Lemma 9 require.
    pub fn simulate_triggering<G: CsrAccess, M: DiffusionModel<G> + ?Sized>(
        &mut self,
        model: &M,
        graph: &G,
        seeds: &[NodeId],
        rng: &mut Rng,
    ) -> u32 {
        self.begin(graph.n());
        // Triggering sets are sampled per run; runs touch few nodes relative
        // to n, so a per-run map beats an O(n) arena reset.
        let mut trig_cache: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut count = 0u32;
        for &s in seeds {
            if self.activate(s) {
                count += 1;
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let out_nbrs: Vec<NodeId> = graph.out_neighbors(u).to_vec();
            for v in out_nbrs {
                if self.active[v as usize] == self.epoch {
                    continue;
                }
                let set = trig_cache.entry(v).or_insert_with(|| {
                    self.trig.clear();
                    model.sample_triggering_set(graph, v, rng, &mut self.trig);
                    std::mem::take(&mut self.trig)
                });
                if set.contains(&u) {
                    self.active[v as usize] = self.epoch;
                    self.queue.push(v);
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IndependentCascade, LinearThreshold};
    use tim_graph::{weights, Graph, GraphBuilder};

    fn path_graph(len: usize, p: f32) -> Graph {
        let mut b = GraphBuilder::new(len);
        for i in 0..len - 1 {
            b.add_edge_with_probability(i as NodeId, i as NodeId + 1, p);
        }
        b.build()
    }

    #[test]
    fn ic_deterministic_path_activates_everyone() {
        let g = path_graph(10, 1.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(ws.simulate_ic(&g, &[0], &mut rng), 10);
    }

    #[test]
    fn ic_zero_probability_activates_only_seeds() {
        let g = path_graph(10, 0.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(ws.simulate_ic(&g, &[0, 5], &mut rng), 2);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = path_graph(5, 0.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(ws.simulate_ic(&g, &[2, 2, 2], &mut rng), 1);
        assert_eq!(ws.simulate_lt(&g, &[2, 2], &mut rng), 1);
        assert_eq!(
            ws.simulate_triggering(&IndependentCascade, &g, &[2, 2], &mut rng),
            1
        );
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = path_graph(5, 1.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(ws.simulate_ic(&g, &[], &mut rng), 0);
        assert_eq!(ws.simulate_lt(&g, &[], &mut rng), 0);
    }

    #[test]
    fn ic_two_hop_probability_matches_closed_form() {
        // 0 -p-> 1 -p-> 2; E[I({0})] = 1 + p + p^2.
        let p = 0.6f32;
        let g = path_graph(3, p);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(5);
        let trials = 200_000;
        let total: u64 = (0..trials)
            .map(|_| ws.simulate_ic(&g, &[0], &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = 1.0 + 0.6 + 0.36;
        assert!((mean - expect).abs() < 0.01, "mean {mean}, expect {expect}");
    }

    #[test]
    fn lt_matches_singleton_triggering_distribution() {
        // Star into node 0 with normalised weights; one seed leaf.
        let mut b = GraphBuilder::new(4);
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        b.add_edge(3, 0);
        let mut g = b.build();
        weights::assign_lt_normalized(&mut g, 9);
        let w_from_1 = {
            let idx = g.in_neighbors(0).iter().position(|&u| u == 1).unwrap();
            g.in_probabilities(0)[idx] as f64
        };
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(6);
        let trials = 100_000;
        // Fast-path LT engine.
        let hits: u64 = (0..trials)
            .map(|_| (ws.simulate_lt(&g, &[1], &mut rng) - 1) as u64)
            .sum();
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - w_from_1).abs() < 0.01,
            "lt {freq} vs weight {w_from_1}"
        );
        // Generic triggering engine must agree.
        let hits2: u64 = (0..trials)
            .map(|_| (ws.simulate_triggering(&LinearThreshold, &g, &[1], &mut rng) - 1) as u64)
            .sum();
        let freq2 = hits2 as f64 / trials as f64;
        assert!(
            (freq2 - w_from_1).abs() < 0.01,
            "trig {freq2} vs {w_from_1}"
        );
    }

    #[test]
    fn generic_triggering_agrees_with_ic_fast_path() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(60, 240, 7);
        weights::assign_constant(&mut g, 0.2);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(8);
        let trials = 30_000;
        let mean_fast: f64 = (0..trials)
            .map(|_| ws.simulate_ic(&g, &[0, 1], &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let mean_gen: f64 = (0..trials)
            .map(|_| ws.simulate_triggering(&IndependentCascade, &g, &[0, 1], &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let rel = (mean_fast - mean_gen).abs() / mean_fast;
        assert!(rel < 0.05, "fast {mean_fast} vs generic {mean_gen}");
    }

    #[test]
    fn workspace_is_reusable_across_graphs_of_different_size() {
        let small = path_graph(3, 1.0);
        let big = path_graph(50, 1.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(9);
        assert_eq!(ws.simulate_ic(&big, &[0], &mut rng), 50);
        assert_eq!(ws.simulate_ic(&small, &[0], &mut rng), 3);
        assert_eq!(ws.simulate_ic(&big, &[0], &mut rng), 50);
    }

    #[test]
    fn lt_path_with_unit_weights_is_deterministic() {
        // Each node has a single in-edge with weight 1: acc jumps to 1 > θ.
        let g = path_graph(8, 1.0);
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..50 {
            assert_eq!(ws.simulate_lt(&g, &[0], &mut rng), 8);
        }
    }
}
