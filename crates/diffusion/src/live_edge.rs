//! Explicit live-edge graph sampling, for exact duality checks.
//!
//! Lemma 2 / Lemma 9 couple forward activation and reverse reachability
//! *through the same random live-edge graph* `g`: `S` activates `v` in the
//! propagation process iff `v` is reachable from `S` in `g`, iff the RR set
//! of `v` in `g` intersects `S`.
//!
//! The production code never materialises `g` (it samples triggering sets
//! lazily), but materialising it makes the coupling testable **exactly**:
//! sample one `g`, then check both directions with plain BFS. The
//! integration tests do this over many samples.

use crate::model::DiffusionModel;
use tim_graph::{Graph, GraphBuilder, NodeId};
use tim_rng::Rng;

/// Samples a complete live-edge graph: for every node `v`, draws one
/// triggering set `T(v)` and keeps exactly the edges `u -> v` with
/// `u ∈ T(v)` (probability 1 on kept edges).
pub fn sample_live_edge_graph<M: DiffusionModel>(graph: &Graph, model: &M, rng: &mut Rng) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(graph.n(), graph.m() / 2);
    let mut trig = Vec::new();
    for v in 0..graph.n() as NodeId {
        trig.clear();
        model.sample_triggering_set(graph, v, rng, &mut trig);
        for &u in &trig {
            b.add_edge_with_probability(u, v, 1.0);
        }
    }
    b.build()
}

/// Marks all nodes reachable from `seeds` by following out-edges
/// (probabilities ignored — intended for live-edge graphs).
pub fn forward_reachable(graph: &Graph, seeds: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; graph.n()];
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in seeds {
        assert!((s as usize) < graph.n(), "seed {s} out of range");
        if !seen[s as usize] {
            seen[s as usize] = true;
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in graph.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push(v);
            }
        }
    }
    seen
}

/// Marks all nodes that can reach `target` by following in-edges
/// (probabilities ignored) — the deterministic RR set of `target`.
pub fn reverse_reachable(graph: &Graph, target: NodeId) -> Vec<bool> {
    assert!((target as usize) < graph.n(), "target out of range");
    let mut seen = vec![false; graph.n()];
    let mut queue: Vec<NodeId> = vec![target];
    seen[target as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in graph.in_neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push(u);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{IndependentCascade, LinearThreshold};
    use tim_graph::weights;

    #[test]
    fn live_edge_graph_is_subgraph() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(60, 300, 1);
        weights::assign_constant(&mut g, 0.4);
        let mut rng = Rng::seed_from_u64(2);
        let live = sample_live_edge_graph(&g, &IndependentCascade, &mut rng);
        assert_eq!(live.n(), g.n());
        for (u, v, _) in live.edges() {
            assert!(
                g.out_neighbors(u).contains(&v),
                "live edge {u}->{v} not in original graph"
            );
        }
    }

    #[test]
    fn ic_keeps_edges_at_rate_p() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(100, 2000, 3);
        weights::assign_constant(&mut g, 0.3);
        let mut rng = Rng::seed_from_u64(4);
        let mut kept = 0usize;
        let rounds = 50;
        for _ in 0..rounds {
            kept += sample_live_edge_graph(&g, &IndependentCascade, &mut rng).m();
        }
        let rate = kept as f64 / (rounds * g.m()) as f64;
        assert!((rate - 0.3).abs() < 0.01, "keep rate {rate}");
    }

    #[test]
    fn lt_live_edge_graph_has_in_degree_at_most_one() {
        let mut g = tim_graph::gen::erdos_renyi_gnm(80, 600, 5);
        weights::assign_lt_normalized(&mut g, 6);
        let mut rng = Rng::seed_from_u64(7);
        let live = sample_live_edge_graph(&g, &LinearThreshold, &mut rng);
        for v in 0..live.n() as NodeId {
            assert!(live.in_degree(v) <= 1, "LT node {v} kept multiple in-edges");
        }
    }

    #[test]
    fn forward_and_reverse_reachability_agree() {
        // In any fixed graph: v reachable from {s}  <=>  s in RR(v).
        let g = tim_graph::gen::erdos_renyi_gnm(40, 120, 8);
        let fwd = forward_reachable(&g, &[0]);
        for v in 0..g.n() as NodeId {
            let rev = reverse_reachable(&g, v);
            assert_eq!(fwd[v as usize], rev[0], "duality violated at node {v}");
        }
    }

    #[test]
    fn forward_reachable_from_nothing_is_empty() {
        let g = tim_graph::gen::erdos_renyi_gnm(10, 30, 9);
        assert!(forward_reachable(&g, &[]).iter().all(|&x| !x));
    }

    #[test]
    fn reverse_reachable_includes_target() {
        let g = tim_graph::gen::erdos_renyi_gnm(10, 30, 10);
        for v in 0..10u32 {
            assert!(reverse_reachable(&g, v)[v as usize]);
        }
    }
}
