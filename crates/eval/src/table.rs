//! Fixed-width ASCII tables and CSV for experiment output.
//!
//! The harness prints every figure/table as rows a reader can diff against
//! the paper's plots; [`Table`] keeps that output aligned and convertible
//! to CSV for external plotting.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_output_is_aligned() {
        let mut t = Table::new(["k", "method", "seconds"]);
        t.push_row(["1", "TIM+", "0.5"]);
        t.push_row(["50", "CELF++", "3600"]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("method"));
        assert!(lines[3].contains("CELF++"));
    }

    #[test]
    fn csv_output_round_trips_simple_cells() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut t = Table::new(["x"]);
        t.push_row(["hello, world"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(["only"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn display_matches_ascii() {
        let mut t = Table::new(["a"]);
        t.push_row(["1"]);
        assert_eq!(format!("{t}"), t.to_ascii());
    }
}
