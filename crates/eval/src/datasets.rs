//! Synthetic stand-ins for the paper's datasets (Table 2).
//!
//! | Paper dataset | n | m | type | avg degree |
//! |---|---|---|---|---|
//! | NetHEPT | 15 K | 31 K | undirected | 4.1 |
//! | Epinions | 76 K | 509 K | directed | 13.4 |
//! | DBLP | 655 K | 2 M | undirected | 6.1 |
//! | LiveJournal | 4.8 M | 69 M | directed | 28.5 |
//! | Twitter | 41.6 M | 1.5 G | directed | 70.5 |
//!
//! The crawls themselves are not redistributable, so each dataset is
//! replaced by a deterministic generator matching its shape: node count,
//! arcs-per-node ratio, heavy-tailed degree distribution, directedness
//! (undirected benchmarks become arc pairs, as in the authors' code).
//! `default_scale` shrinks the largest graphs so the full experiment suite
//! finishes on a laptop; the harness prints the actual n and m used.
//! DESIGN.md §4 explains why this substitution preserves the experiments'
//! behaviour.

use tim_graph::{gen, Graph};

/// One of the paper's five benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// High-energy-physics collaboration network (undirected).
    NetHept,
    /// Epinions trust network (directed).
    Epinions,
    /// DBLP co-authorship network (undirected).
    Dblp,
    /// LiveJournal friendship network (directed).
    LiveJournal,
    /// Twitter follower network (directed), the paper's billion-edge graph.
    Twitter,
}

impl Dataset {
    /// All five datasets in the paper's Table 2 order.
    pub fn all() -> [Dataset; 5] {
        [
            Dataset::NetHept,
            Dataset::Epinions,
            Dataset::Dblp,
            Dataset::LiveJournal,
            Dataset::Twitter,
        ]
    }

    /// The four "large" datasets of Figures 6–7.
    pub fn large() -> [Dataset; 4] {
        [
            Dataset::Epinions,
            Dataset::Dblp,
            Dataset::LiveJournal,
            Dataset::Twitter,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::NetHept => "NetHEPT",
            Dataset::Epinions => "Epinions",
            Dataset::Dblp => "DBLP",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::Twitter => "Twitter",
        }
    }

    /// Node count of the real dataset.
    pub fn paper_n(&self) -> u64 {
        match self {
            Dataset::NetHept => 15_000,
            Dataset::Epinions => 76_000,
            Dataset::Dblp => 655_000,
            Dataset::LiveJournal => 4_800_000,
            Dataset::Twitter => 41_600_000,
        }
    }

    /// Edge count of the real dataset (undirected counted once, as in
    /// Table 2).
    pub fn paper_m(&self) -> u64 {
        match self {
            Dataset::NetHept => 31_000,
            Dataset::Epinions => 509_000,
            Dataset::Dblp => 2_000_000,
            Dataset::LiveJournal => 69_000_000,
            Dataset::Twitter => 1_468_000_000,
        }
    }

    /// Whether the original dataset is undirected.
    pub fn undirected(&self) -> bool {
        matches!(self, Dataset::NetHept | Dataset::Dblp)
    }

    /// Default shrink factor applied to `paper_n` so the whole suite runs
    /// on commodity hardware; 1.0 means full size.
    pub fn default_scale(&self) -> f64 {
        match self {
            Dataset::NetHept => 1.0,
            Dataset::Epinions => 1.0,
            Dataset::Dblp => 0.1,
            Dataset::LiveJournal => 0.01,
            Dataset::Twitter => 0.002,
        }
    }

    /// Builds the stand-in graph at `scale × paper_n` nodes (structure
    /// only; assign a weight model afterwards).
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    pub fn build(&self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((self.paper_n() as f64 * scale) as usize).max(1_000);
        match self {
            // Collaboration networks: power-law configuration model,
            // symmetrised. Directed avg degree before symmetrisation is
            // half the paper's Table-2 average degree.
            Dataset::NetHept => {
                let g = gen::powerlaw_configuration(n, 2.6, 2.05, n / 4, seed);
                gen::symmetrize(&g)
            }
            Dataset::Dblp => {
                let g = gen::powerlaw_configuration(n, 2.5, 3.05, n / 4, seed);
                gen::symmetrize(&g)
            }
            // Follower/trust networks: directed preferential attachment
            // with m_per chosen to hit the paper's arcs-per-node ratio.
            Dataset::Epinions => gen::barabasi_albert(n, 6, 0.12, seed),
            Dataset::LiveJournal => gen::barabasi_albert(n, 13, 0.10, seed),
            Dataset::Twitter => gen::barabasi_albert(n, 32, 0.10, seed),
        }
    }

    /// Builds at the dataset's [`default_scale`](Self::default_scale).
    pub fn build_default(&self, seed: u64) -> Graph {
        self.build(self.default_scale(), seed)
    }

    /// Arcs-per-node ratio of the real dataset (undirected edges count
    /// twice), the shape target for the stand-in.
    pub fn paper_arcs_per_node(&self) -> f64 {
        let arcs = if self.undirected() {
            2 * self.paper_m()
        } else {
            self.paper_m()
        };
        arcs as f64 / self.paper_n() as f64
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_five_datasets() {
        assert_eq!(Dataset::all().len(), 5);
        assert_eq!(Dataset::large().len(), 4);
        assert_eq!(Dataset::all()[0].to_string(), "NetHEPT");
    }

    #[test]
    fn nethept_standin_matches_paper_shape() {
        let d = Dataset::NetHept;
        let g = d.build(1.0, 1);
        assert_eq!(g.n(), 15_000);
        let arcs_per_node = g.m() as f64 / g.n() as f64;
        let target = d.paper_arcs_per_node(); // 4.13
        assert!(
            (arcs_per_node - target).abs() / target < 0.25,
            "arcs/node {arcs_per_node} vs paper {target}"
        );
        // Undirected stand-in: every arc has its reverse.
        for (u, v, _) in g.edges().take(500) {
            assert!(g.out_neighbors(v).contains(&u));
        }
    }

    #[test]
    fn epinions_standin_matches_paper_shape() {
        let d = Dataset::Epinions;
        let g = d.build(1.0, 2);
        assert_eq!(g.n(), 76_000);
        let ratio = g.m() as f64 / g.n() as f64;
        let target = d.paper_arcs_per_node(); // 6.7
        assert!(
            (ratio - target).abs() / target < 0.25,
            "arcs/node {ratio} vs paper {target}"
        );
    }

    #[test]
    fn scaled_builds_shrink_node_count() {
        let g = Dataset::Dblp.build(0.02, 3);
        assert_eq!(g.n(), 13_100);
        let ratio = g.m() as f64 / g.n() as f64;
        let target = Dataset::Dblp.paper_arcs_per_node();
        assert!(
            (ratio - target).abs() / target < 0.3,
            "arcs/node {ratio} vs paper {target}"
        );
    }

    #[test]
    fn scale_floor_keeps_graphs_testable() {
        let g = Dataset::Twitter.build(0.000001, 4);
        assert_eq!(g.n(), 1_000);
        assert!(g.m() > 10_000, "Twitter stand-in must stay dense");
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::LiveJournal.build(0.001, 5);
        let b = Dataset::LiveJournal.build(0.001, 5);
        assert_eq!(a.m(), b.m());
        let ea: Vec<_> = a.edges().take(100).collect();
        let eb: Vec<_> = b.edges().take(100).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn heavy_tail_present_in_standins() {
        for d in [Dataset::NetHept, Dataset::Epinions] {
            let g = d.build(0.2, 6);
            let stats = g.degree_stats();
            assert!(
                stats.max_in_degree as f64 > 5.0 * stats.avg_degree,
                "{d}: max in-degree {} vs avg {}",
                stats.max_in_degree,
                stats.avg_degree
            );
        }
    }

    #[test]
    fn default_scales_are_laptop_sized() {
        // Summed default-scale node counts stay under 300k.
        let total: usize = Dataset::all()
            .iter()
            .map(|d| ((d.paper_n() as f64 * d.default_scale()) as usize).max(1_000))
            .sum();
        assert!(total < 300_000, "total default nodes {total}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        Dataset::NetHept.build(0.0, 1);
    }
}
