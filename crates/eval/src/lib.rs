//! Experiment support for reproducing the paper's evaluation (§7).
//!
//! - [`datasets`] — synthetic stand-ins for the paper's five datasets
//!   (Table 2), with per-dataset default scales sized for a laptop;
//! - [`memory`] — a counting global allocator for the Figure 12 memory
//!   measurements;
//! - [`table`] — fixed-width ASCII / CSV table emission for experiment
//!   output;
//! - [`timing`] — tiny stopwatch helpers.

pub mod datasets;
pub mod memory;
pub mod table;
pub mod timing;

pub use datasets::Dataset;
pub use table::Table;
pub use timing::time;
