//! Wall-clock helpers for experiment timing.

use std::time::{Duration, Instant};

/// Runs `f` and returns its result with the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration as seconds with millisecond precision (the unit used
/// throughout the paper's figures).
pub fn format_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_value_and_positive_duration() {
        let (v, d) = time(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(v > 0);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn format_secs_has_millisecond_precision() {
        assert_eq!(format_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(format_secs(Duration::from_micros(1)), "0.000");
    }
}
