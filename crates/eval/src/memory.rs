//! A counting global allocator for memory experiments (Figure 12).
//!
//! The paper reports TIM+'s memory consumption, dominated by the RR-set
//! arena. [`TrackingAllocator`] wraps the system allocator with atomic
//! live/peak counters; a binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tim_eval::memory::TrackingAllocator =
//!     tim_eval::memory::TrackingAllocator::new();
//! ```
//!
//! and then brackets each measured region with [`reset_peak`] /
//! [`peak_bytes`]. When the allocator is not installed the counters simply
//! stay at zero, so library code can call the accessors unconditionally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System-allocator wrapper that tracks live and peak heap bytes.
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Creates the allocator (const, for `#[global_allocator]` statics).
    pub const fn new() -> Self {
        TrackingAllocator
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // Lock-free peak update.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: defers to the system allocator for every operation; the counters
// are side effects only.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Currently live heap bytes (0 unless the allocator is installed).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, starting a new measurement
/// region.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Formats a byte count with binary units, e.g. `1.50 GiB`.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global allocator cannot be swapped inside a test binary, so the
    // GlobalAlloc impl is exercised by direct (unsafe) calls. The counters
    // are process-global, so tests touching them serialise on this lock.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn alloc_dealloc_adjusts_counters() {
        let _guard = LOCK.lock().unwrap();
        let a = TrackingAllocator::new();
        let before_live = live_bytes();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        // SAFETY: layout is valid (non-zero, power-of-two align) and the
        // pointer is freed with the same layout before the block ends.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(live_bytes() >= before_live + 4096);
            assert!(peak_bytes() >= before_live + 4096);
            a.dealloc(p, layout);
        }
        assert_eq!(live_bytes(), before_live);
    }

    #[test]
    fn realloc_tracks_size_change() {
        let _guard = LOCK.lock().unwrap();
        let a = TrackingAllocator::new();
        let before = live_bytes();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        // SAFETY: valid layout; p was allocated with `layout`, q is freed
        // with the layout matching its reallocated size.
        unsafe {
            let p = a.alloc(layout);
            let q = a.realloc(p, layout, 8192);
            assert!(!q.is_null());
            assert_eq!(live_bytes(), before + 8192);
            a.dealloc(q, Layout::from_size_align(8192, 8).unwrap());
        }
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let _guard = LOCK.lock().unwrap();
        let a = TrackingAllocator::new();
        let layout = Layout::from_size_align(64 * 1024, 8).unwrap();
        // SAFETY: valid layout; the pointer is freed immediately with the
        // same layout.
        unsafe {
            let p = a.alloc(layout);
            a.dealloc(p, layout);
        }
        assert!(peak_bytes() >= 64 * 1024);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn format_bytes_uses_binary_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(format_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }

    #[test]
    fn alloc_zeroed_counts_too() {
        let _guard = LOCK.lock().unwrap();
        let a = TrackingAllocator::new();
        let before = live_bytes();
        let layout = Layout::from_size_align(2048, 8).unwrap();
        // SAFETY: valid layout; alloc_zeroed guarantees the byte read is
        // initialised to zero, and the pointer is freed with the same layout.
        unsafe {
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert_eq!(*p, 0);
            assert!(live_bytes() >= before + 2048);
            a.dealloc(p, layout);
        }
    }
}
