//! Minimal offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this API-compatible subset: enough for the benches in
//! `crates/bench/benches/` to compile and produce useful numbers, with the
//! same source code that the real criterion crate would accept.
//!
//! Measurement model: per benchmark, one warm-up batch, then `sample_size`
//! timed samples (each sized so a sample takes roughly
//! `measurement_time / sample_size`); the reported figure is the median
//! sample, printed as `<group>/<id> ... <time>/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (shim).
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// `--test`-style smoke mode: run every routine exactly once.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
            test_mode: args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a free-standing benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        let cfg = self.bench_config(None);
        run_bench(&label, cfg, f);
        self
    }

    fn bench_config(&self, group_sample_size: Option<usize>) -> BenchConfig {
        BenchConfig {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: group_sample_size.unwrap_or(self.sample_size),
            test_mode: self.test_mode,
        }
    }
}

#[derive(Clone, Copy)]
struct BenchConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

/// A named group of related benchmarks (shim).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Records the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        let cfg = self.criterion.bench_config(self.sample_size);
        run_bench(&label, cfg, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        let cfg = self.criterion.bench_config(self.sample_size);
        run_bench(&label, cfg, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function_name: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function_name: Some(s),
            parameter: None,
        }
    }
}

/// Throughput annotation for a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, decimal multiples.
    BytesDecimal(u64),
}

/// How much setup output to batch per timing run in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: one setup per iteration batch.
    LargeInput,
    /// One setup per single iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    cfg: BenchConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, u64::from(u32::MAX));
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh values produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.cfg.test_mode {
            black_box(routine(setup()));
            self.samples.push(Duration::ZERO);
            return;
        }
        let input = setup();
        black_box(routine(input)); // warm-up
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Like [`iter_batched`](Self::iter_batched) with a mutable borrow.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut i| routine(&mut i), _size);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, cfg: BenchConfig, mut f: F) {
    let mut b = Bencher {
        cfg,
        samples: Vec::new(),
    };
    f(&mut b);
    if cfg.test_mode {
        println!("{label:<48} ok (test mode)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!("{label:<48} {}/iter", format_duration(median));
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Criterion benchmark group entry point (generated).
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn bencher_runs_in_test_mode() {
        let cfg = BenchConfig {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(1),
            sample_size: 2,
            test_mode: true,
        };
        let mut calls = 0u32;
        run_bench("shim/self_test", cfg, |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with('s'));
    }
}
