//! Minimal offline stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this API-compatible subset: deterministic seeded case
//! generation (no persistence, no shrinking) behind the same `proptest!` /
//! `Strategy` / `prop_assert*` surface the real crate accepts. Failures
//! panic with the generated case count so the offending seed region is
//! reproducible — rerunning is deterministic by construction.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset: only `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG driving case generation (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG from a fixed seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply range reduction; bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random values — the shim's version of proptest's
/// `Strategy` (generation only; no shrinking tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Upper bound hit with probability ~2^-53; close enough for a shim.
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for RangeInclusive<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut set = BTreeSet::new();
            // Cap draws so a small element universe cannot hang the test.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates `BTreeSet`s of `element` values with size in `size`
    /// (best-effort when the element universe is small).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(!size.is_empty(), "empty size range");
        BTreeSetStrategy { element, size }
    }
}

/// Built-in leaf strategies, mirroring proptest's `prop` module paths.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl super::super::Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut super::super::TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Generates `true` and `false` with equal probability.
        pub const ANY: Any = Any;
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its assumption fails (shim: the case simply
/// passes; there is no case-count replenishment).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` that runs
/// `config.cases` deterministic random cases of its body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Seed fixed per test name so failures reproduce exactly.
                let seed = $crate::fnv1a(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                let strategy = ( $($strategy,)+ );
                for case in 0..config.cases {
                    let ( $($arg,)+ ) = $crate::Strategy::generate(&strategy, &mut rng);
                    let run = || -> () { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: property {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), case, config.cases, seed,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// FNV-1a hash of a test name, used as the deterministic base seed.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..10_000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = TestRng::new(2);
        let vals: Vec<bool> = (0..64)
            .map(|_| prop::bool::ANY.generate(&mut rng))
            .collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }

    #[test]
    fn prop_map_composes() {
        let strat = (1usize..5, 1usize..5).prop_map(|(a, b)| a * b);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=16).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..10, flip in prop::bool::ANY) {
            prop_assert!(x < 10);
            if flip {
                prop_assert_ne!(x, 10);
            } else {
                prop_assert_eq!(x, x);
            }
        }
    }
}
