//! SplitMix64: a tiny 64-bit generator used for seed expansion.
//!
//! SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush with a single
//! `u64` of state and, crucially, maps *any* seed — including 0 — to a
//! well-mixed stream. We use it to expand user seeds into the 256-bit
//! state of [`Xoshiro256pp`](crate::Xoshiro256pp), as recommended by the
//! xoshiro authors.

use crate::RandomSource;

/// A SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (0 is fine).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        let expect = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973u64,
            9_817_491_932_198_370_423u64,
        ];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
