//! xoshiro256++ — the workspace's main generator.
//!
//! xoshiro256++ 1.0 (Blackman & Vigna 2019) is an all-purpose 64-bit
//! generator: 256 bits of state, period 2^256 − 1, excellent statistical
//! quality, and a `jump()` function that advances the stream by 2^128
//! steps — which we use to hand out provably non-overlapping substreams
//! to worker threads during parallel RR-set generation.

use crate::{RandomSource, SplitMix64};

/// A xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding `seed` through SplitMix64.
    ///
    /// Any seed is acceptable; distinct seeds yield statistically
    /// independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the one fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the degenerate fixed point).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all zeros"
        );
        Self { s }
    }

    /// Advances the generator by 2^128 steps, in O(1) word operations.
    ///
    /// Calling `jump()` k times on a clone produces a stream guaranteed not
    /// to overlap with the original for the next 2^128 outputs.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns a fresh generator 2^128 steps ahead, leaving `self` where the
    /// child stream ends. Calling this n times yields n disjoint streams —
    /// the primitive behind deterministic parallel sampling.
    pub fn split_off(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }
}

impl RandomSource for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // First three outputs of xoshiro256++ with state {1, 2, 3, 4},
        // from the reference C implementation.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expect = [41_943_041u64, 58_720_359u64, 3_588_806_011_781_223u64];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "must not be all zeros")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn jump_changes_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let head_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(head_a, head_b);
    }

    #[test]
    fn split_off_streams_are_distinct_and_deterministic() {
        let mut base1 = Xoshiro256pp::seed_from_u64(11);
        let mut base2 = Xoshiro256pp::seed_from_u64(11);
        let streams1: Vec<Xoshiro256pp> = (0..4).map(|_| base1.split_off()).collect();
        let streams2: Vec<Xoshiro256pp> = (0..4).map(|_| base2.split_off()).collect();
        for (i, (mut s1, mut s2)) in streams1.into_iter().zip(streams2).enumerate() {
            let v1: Vec<u64> = (0..32).map(|_| s1.next_u64()).collect();
            let v2: Vec<u64> = (0..32).map(|_| s2.next_u64()).collect();
            assert_eq!(v1, v2, "stream {i} not reproducible");
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = Xoshiro256pp::seed_from_u64(12345);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
