//! Vose's alias method: O(1) sampling from a fixed discrete distribution.
//!
//! TIM samples RR-set roots uniformly, but two substrates need weighted
//! node sampling:
//!
//! - the distribution `V*` of Lemma 4, where a node's mass is proportional
//!   to its in-degree;
//! - LT-model triggering-set sampling, where each visited node picks one
//!   in-neighbour with probability proportional to the edge weight.
//!
//! Construction is O(n); each sample costs one `u64` of randomness plus one
//! comparison and at most two table reads.

use crate::RandomSource;

/// A pre-built alias table over indices `0..len`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the "home" index of each bucket.
    prob: Vec<f64>,
    /// Fallback index taken when the acceptance test fails.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// Weights need not be normalised. Zero weights are allowed (such
    /// indices are never sampled as long as some weight is positive).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: weights must be non-empty");
        let n = weights.len();
        assert!(n <= u32::MAX as usize, "AliasTable: too many weights");
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "AliasTable: weight {i} is {w}, must be finite and >= 0"
            );
            total += w;
        }
        assert!(total > 0.0, "AliasTable: weights must not all be zero");

        // Scale so that the average bucket holds probability exactly 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];

        // Partition indices into under-full (< 1) and over-full (>= 1).
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(s), Some(&l)) = (small.pop(), large.last()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // The donor gives away (1 - scaled[s]) of its mass.
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining buckets are full up to floating-point error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Self { prob, alias }
    }

    /// Number of indices in the distribution.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table covers no indices (never constructible; kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weight distribution.
    #[inline]
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> usize {
        let i = rng.next_index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn empirical(weights: &[f64], trials: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / trials as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 160_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_expectation() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freqs = empirical(&w, 200_000, 2);
        for (i, f) in freqs.iter().enumerate() {
            let expect = w[i] / 10.0;
            assert!((f - expect).abs() < 0.01, "idx {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weights_never_sampled() {
        let w = [0.0, 5.0, 0.0, 5.0];
        let freqs = empirical(&w, 50_000, 3);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
        assert!((freqs[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn singleton_always_sampled() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn heavy_tail_distribution_is_stable() {
        // One huge weight next to tiny ones exercises the donor loop.
        let mut w = vec![1e-6; 99];
        w.push(1e6);
        let freqs = empirical(&w, 100_000, 5);
        assert!(freqs[99] > 0.999, "dominant weight freq {}", freqs[99]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn len_reports_size() {
        let table = AliasTable::new(&[1.0, 1.0, 1.0]);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
    }
}
