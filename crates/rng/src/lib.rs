//! Deterministic, fast random number generation for influence maximization.
//!
//! Reverse-reachable-set sampling is the innermost loop of TIM/RIS: a single
//! run can draw hundreds of millions of coin flips. This crate provides
//! a small, allocation-free toolkit tailored to that workload:
//!
//! - [`SplitMix64`] — a tiny stateless-style seeder used to expand one `u64`
//!   seed into the 256-bit state of the main generator.
//! - [`Xoshiro256pp`] — the xoshiro256++ generator (Blackman & Vigna), with
//!   `jump()` for creating 2^128-separated parallel streams. This is the
//!   default RNG of the workspace, exported as [`Rng`].
//! - [`AliasTable`] — Vose's alias method for O(1) sampling from a discrete
//!   distribution; used for the in-degree-proportional node distribution
//!   `V*` of Lemma 4 and for LT-model in-edge selection.
//!
//! Everything here is deterministic given a seed, independent of platform
//! and thread count (parallel code derives per-shard generators from the
//! base seed, never from global state).

mod alias;
mod splitmix;
mod xoshiro;

pub use alias::AliasTable;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// The workspace-default random number generator.
pub type Rng = Xoshiro256pp;

/// A minimal trait for 64-bit random sources.
///
/// All sampling helpers are provided as default methods so that alternative
/// generators (e.g. a recorded stream in tests) only implement [`next_u64`].
///
/// [`next_u64`]: RandomSource::next_u64
pub trait RandomSource {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Flips a coin that comes up `true` with probability `p`.
    ///
    /// `p <= 0` always yields `false`; `p >= 1` always yields `true`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// `bernoulli` specialised to an `f32` probability (the edge-probability
    /// storage type); avoids an `f32 -> f64` widening in the hot loop.
    #[inline]
    fn bernoulli_f32(&mut self, p: f32) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f32() < p
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire 2019: widening multiply, reject the biased low zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    #[inline]
    fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f32_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn bernoulli_extremes_are_deterministic() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(rng.bernoulli(1.0));
            assert!(!rng.bernoulli(0.0));
            assert!(rng.bernoulli(1.5));
            assert!(!rng.bernoulli(-0.5));
            assert!(rng.bernoulli_f32(1.0));
            assert!(!rng.bernoulli_f32(0.0));
        }
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Rng::seed_from_u64(4);
        let trials = 200_000;
        for &p in &[0.01, 0.25, 0.5, 0.9] {
            let hits = (0..trials).filter(|_| rng.bernoulli(p)).count();
            let freq = hits as f64 / trials as f64;
            assert!(
                (freq - p).abs() < 0.01,
                "p={p}: observed {freq}, expected within 0.01"
            );
        }
    }

    #[test]
    fn next_below_respects_bound_and_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(5);
        let bound = 7u64;
        let mut counts = [0u64; 7];
        let trials = 140_000;
        for _ in 0..trials {
            let x = rng.next_below(bound);
            assert!(x < bound);
            counts[x as usize] += 1;
        }
        let expected = trials as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: count {c}, expected ~{expected}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = Rng::seed_from_u64(6);
        rng.next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = Rng::seed_from_u64(8);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
