//! The eight subcommands: select, evaluate, stats, generate, snapshot,
//! query, serve, client.

use crate::args::{parse_id_list, Args};
use std::io::{BufRead, Read, Write};
use std::sync::Arc;
use tim_baselines::{
    celf::CelfGreedy, degree_discount::DegreeDiscount, high_degree::HighDegree, irie::Irie,
    pagerank::PageRank, ris::Ris, simpath::SimPath, SeedSelector,
};
use tim_core::{Imm, Tim, TimPlus};
use tim_diffusion::{
    BackingModel, DiffusionModel, IndependentCascade, LinearThreshold, ModelKind, SpreadEstimator,
};
use tim_engine::{QueryEngine, RrPool};
use tim_eval::Dataset;
use tim_graph::io::LoadedGraph;
use tim_graph::{analysis, io, snapshot, weights, Graph, NodeId};
use tim_server::{
    CappedLine, CappedLineReader, GraphCatalog, LabelMap, Server, ServerConfig, ServerState,
    DEFAULT_GRAPH_NAME, OVERSIZED_LINE_REPLY,
};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  tim select   <graph> -k <K> [--algo tim+|tim|imm|ris|celf|celf++|greedy|irie|simpath|degree|degreediscount|pagerank]
               [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--runs 10000] [--undirected] [--quiet]
  tim evaluate <graph> --seeds <id,id,...> [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri]
               [--runs 10000] [--seed 0] [--undirected]
  tim stats    <graph> [--undirected]
  tim generate <ba|gnm|ws|powerlaw|nethept|epinions|dblp|livejournal|twitter>
               --out <path> [--n 10000] [--param 4] [--scale 1.0] [--seed 0]
  tim snapshot <graph> --out <path.timg> [--format v1|v2] [--weights keep|wc|lt|const:<p>|tri]
               [--seed 0] [--undirected]
               (--format v2 writes the page-aligned, mmap-able layout that
                --mmap serving requires; the input may itself be a v1
                snapshot, so this is also the v1 -> v2 migration)
  tim query    [<graph>] [--graph <name>=<path>[::<k=v,...>]]... [--graphs <dir>]
               [--default-graph <name>] [--max-loaded 8] [--pool <path.timp>]
               [--pool-dir <dir>] [--persist-pools] [--mmap-pools] [--admin] [--mmap]
               [-k <K=50>] [--model ic|lt] [--weights wc|...] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--pool-cache 4] [--select-threads 1]
               [--select-strategy eager|lazy|auto] [--undirected] [--quiet]
               (reads line-delimited tim/3 queries from stdin:
                  select <k> [fast] [eps=<v>] [ell=<v>]
                  eval <id,id,...>
                  marginal <id,id,...> <cand-id>
                  use <graph> | graphs | stats | batch <n> | ping
                  attach <name>=<path>[::<k=v,...>] | detach <name>
                  persist | stats pools         [admin verbs; need --admin])
  tim serve    [<graph>] [--graph <name>=<path>[::<k=v,...>]]... [--graphs <dir>]
               [--default-graph <name>] [--max-loaded 8]
               [--pool-dir <dir>] [--persist-pools] [--mmap-pools] [--admin] [--mmap]
               [--addr 127.0.0.1:7171] [--threads 4] [--pool-cache 4]
               [--event-loop] [--idle-timeout <secs>] [--max-conns <n>]
               [-k <K=50>] [--model ic|lt] [--weights wc|...] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--pool <path.timp>] [--select-threads 1]
               [--select-strategy eager|lazy|auto] [--undirected] [--quiet]
               (serves the tim/3 query protocol over TCP; prints
                `listening on <addr>` on stdout when bound — see docs/PROTOCOL.md;
                --event-loop serves via epoll reactor shards instead of
                thread-per-connection workers: concurrency bounded by fds,
                with --idle-timeout reaping and --max-conns admission)
  tim client   --addr <host:port> [--timeout <secs>]
               (pipes line-delimited queries from stdin to a running server,
                answers to stdout; exits nonzero if any response is `error: …`;
                --timeout bounds connect, reads, and writes instead of
                hanging forever)

  <graph> is a SNAP-style text edge list or a binary .timg snapshot
  (auto-detected by content, not extension). `query` and `serve` host a
  multi-graph catalog: the positional graph (if given) is named `default`,
  each --graph adds a lazily loaded named graph, and --graphs scans a
  directory of .timg/.txt/.edges files (stems become names). A --graph
  spec may carry per-graph overrides after `::` (model=ic|lt, eps=, ell=,
  seed=, k=, weights=, mmap=true|false, mmap_pools=true|false,
  select_threads=, select_strategy=), replacing the global defaults
  for that graph.
  --select-threads shards each query's greedy selection phase across N
  worker threads (0 = all cores; default 1 = serial); answers are
  byte-identical at any thread count, so it only changes latency.
  --select-strategy picks how those workers search: eager scans every
  node each round, lazy keeps CELF-style per-worker heaps (auto, the
  default, picks lazy). Strategy never changes answers either — only
  the number of gain evaluations per round.
  With --pool-dir every graph keeps its RR-set pools in <dir>/<name>/
  (read on start — a warm restart skips the pool builds); --persist-pools
  additionally writes newly built or grown pools back automatically;
  --mmap-pools restores v2 (.timp) spills as zero-copy read-only
  mappings — restore cost is the header plus a few sequential scans
  instead of decode + index rebuild, answers stay byte-identical, v1
  spills fall back to the heap path, and pool growth always happens
  heap-side (per-graph `mmap_pools=` overrides flip it per graph).
  With --mmap every path-backed graph (the positional one included) must
  be a v2 snapshot and is served as a zero-copy mmap view instead of
  being decoded onto the heap — answers are byte-identical to heap
  serving. Mapped graphs serve the probabilities baked into the snapshot,
  so --mmap implies --weights keep (an explicit contradicting --weights
  is an error); per-graph `mmap=` overrides flip the choice per graph.";

/// Entry point: dispatches on the subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| "missing subcommand".to_string())?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "select" => select(&args),
        "evaluate" => evaluate(&args),
        "stats" => stats(&args),
        "generate" => generate(&args),
        "snapshot" => snapshot_cmd(&args),
        "query" => query(&args),
        "serve" => serve(&args),
        "client" => client(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Applies a `--weights` spec to a graph. `seed` perturbs the seeded
/// models (lt/tri) exactly as `select`/`evaluate` always have. The spec
/// grammar is owned by `tim_graph::weights::apply_spec` — the same code
/// the server-side graph catalog uses for lazy loads, so the eager CLI
/// path and lazy serving path cannot drift.
fn apply_weights(graph: &mut Graph, spec: &str, seed: u64) -> Result<(), String> {
    weights::apply_spec(graph, spec, seed).map_err(|e| e.to_string())
}

/// Loads the input graph (text or `.timg`, sniffed by content) and applies
/// the requested weight model.
fn load(args: &Args) -> Result<LoadedGraph, String> {
    let path = args.positional(0, "input graph path")?;
    let mut loaded = io::load_graph(path, args.switch("undirected"))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    apply_weights(&mut loaded.graph, args.get("weights").unwrap_or("wc"), seed)?;
    Ok(loaded)
}

#[allow(clippy::too_many_arguments)] // flat plumbing of CLI flags
fn run_selection<M: DiffusionModel + Sync + Clone>(
    algo: &str,
    model: M,
    graph: &Graph,
    k: usize,
    eps: f64,
    ell: f64,
    seed: u64,
    runs: usize,
) -> Result<(Vec<NodeId>, String), String> {
    let seeds = match algo {
        "tim+" => {
            TimPlus::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "tim" => {
            Tim::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "imm" => {
            Imm::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "ris" => Ris::new(model)
            .epsilon(eps.max(0.3))
            .tau_constant(0.1)
            .seed(seed)
            .select(graph, k),
        "celf" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Celf)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "celf++" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::CelfPlusPlus)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "greedy" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Plain)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "irie" => Irie::new(model).seed(seed).select(graph, k),
        other => return Err(format!("unknown --algo '{other}'")),
    };
    Ok((seeds, algo.to_string()))
}

fn select(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let k: usize = args.get_parsed("k", 0usize)?;
    if k == 0 {
        return Err("select: -k <K> is required and must be positive".into());
    }
    let algo = args.get("algo").unwrap_or("tim+").to_lowercase();
    let model_name = args.get("model").unwrap_or("ic").to_lowercase();
    let eps: f64 = args.get_parsed("eps", 0.1f64)?;
    let ell: f64 = args.get_parsed("ell", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let runs: usize = args.get_parsed("runs", 10_000usize)?;

    // Model-independent heuristics first.
    let seeds = match algo.as_str() {
        "degree" => HighDegree.select(g, k),
        "degreediscount" => DegreeDiscount::new().select(g, k),
        "pagerank" => PageRank::new().select(g, k),
        "simpath" => SimPath::new().select(g, k),
        _ => match model_name.as_str() {
            "ic" => run_selection(&algo, IndependentCascade, g, k, eps, ell, seed, runs)?.0,
            "lt" => run_selection(&algo, LinearThreshold, g, k, eps, ell, seed, runs)?.0,
            other => return Err(format!("unknown --model '{other}'")),
        },
    };

    let labels: Vec<u64> = seeds.iter().map(|&v| loaded.label_of(v)).collect();
    if args.switch("quiet") {
        for l in &labels {
            println!("{l}");
        }
        return Ok(());
    }
    println!(
        "graph: n = {}, m = {} | algo = {algo}, model = {model_name}, k = {k}",
        g.n(),
        g.m()
    );
    println!("seeds (original labels): {labels:?}");
    let spread = match model_name.as_str() {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
        _ => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
    };
    println!("estimated spread ({runs} MC runs): {spread:.1}");
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let wanted = parse_id_list(
        args.get("seeds")
            .ok_or_else(|| "evaluate: --seeds <id,id,...> is required".to_string())?,
    )?;
    if wanted.is_empty() {
        return Err("evaluate: --seeds list is empty".into());
    }
    // Map original labels back to dense ids.
    let mut seeds = Vec::with_capacity(wanted.len());
    for label in &wanted {
        let dense = loaded
            .labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| format!("seed label {label} not present in the graph"))?;
        seeds.push(dense as NodeId);
    }
    let runs: usize = args.get_parsed("runs", 10_000usize)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let (spread, stderr) = match args.get("model").unwrap_or("ic") {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        "ic" => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        other => return Err(format!("unknown --model '{other}'")),
    };
    println!(
        "E[I(S)] ≈ {spread:.2} ± {:.2} (|S| = {}, {runs} runs)",
        2.0 * stderr,
        seeds.len()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let ds = g.degree_stats();
    println!("nodes:          {}", g.n());
    println!("arcs:           {}", g.m());
    println!("avg degree:     {:.2}", ds.avg_degree);
    println!("max out-degree: {}", ds.max_out_degree);
    println!("max in-degree:  {}", ds.max_in_degree);
    println!("largest SCC:    {}", analysis::largest_scc_size(g));
    let h = analysis::in_degree_histogram(g);
    for d in [1usize, 10, 100] {
        if d <= h.max_degree() {
            println!("P(indeg >= {d}): {:.4}", h.tail_fraction(d));
        }
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.positional(0, "generator kind")?;
    let out = args
        .get("out")
        .ok_or_else(|| "generate: --out <path> is required".to_string())?;
    let n: usize = args.get_parsed("n", 10_000usize)?;
    let param: f64 = args.get_parsed("param", 4.0f64)?;
    let scale: f64 = args.get_parsed("scale", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;

    let dataset = |d: Dataset| d.build(scale, seed);
    let g = match kind {
        "ba" => tim_graph::gen::barabasi_albert(n, param.max(1.0) as usize, 0.1, seed),
        "gnm" => tim_graph::gen::erdos_renyi_gnm(n, (n as f64 * param) as usize, seed),
        "ws" => tim_graph::gen::watts_strogatz(n, param.max(1.0) as usize, 0.1, seed),
        "powerlaw" => tim_graph::gen::powerlaw_configuration(n, 2.5, param, n / 4, seed),
        "nethept" => dataset(Dataset::NetHept),
        "epinions" => dataset(Dataset::Epinions),
        "dblp" => dataset(Dataset::Dblp),
        "livejournal" => dataset(Dataset::LiveJournal),
        "twitter" => dataset(Dataset::Twitter),
        other => return Err(format!("unknown generator '{other}'")),
    };
    io::save_edge_list(&g, out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} nodes / {} arcs to {out}", g.n(), g.m());
    Ok(())
}

fn snapshot_cmd(args: &Args) -> Result<(), String> {
    let path = args.positional(0, "input graph path")?;
    let out = args
        .get("out")
        .ok_or_else(|| "snapshot: --out <path.timg> is required".to_string())?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;

    let t0 = std::time::Instant::now();
    let mut loaded = io::load_graph(path, args.switch("undirected"))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let parse_time = t0.elapsed();
    // Default "keep": snapshots preserve the source probabilities so that
    // `select --weights wc` behaves identically on text and snapshot
    // input. Pass --weights explicitly to bake a model in (then query
    // with --weights keep).
    apply_weights(
        &mut loaded.graph,
        args.get("weights").unwrap_or("keep"),
        seed,
    )?;

    let format = args.get("format").unwrap_or("v1");
    match format {
        "v1" => snapshot::save_snapshot(&loaded.graph, &loaded.labels, out)
            .map_err(|e| format!("writing {out}: {e}"))?,
        "v2" => snapshot::save_snapshot_v2(&loaded.graph, &loaded.labels, out)
            .map_err(|e| format!("writing {out}: {e}"))?,
        other => return Err(format!("unknown --format '{other}' (expected v1 or v2)")),
    }

    // Reload to verify the round trip and measure the binary path
    // (load_snapshot is version-gated, so this covers both formats).
    let t1 = std::time::Instant::now();
    let reloaded = snapshot::load_snapshot(out).map_err(|e| format!("verifying {out}: {e}"))?;
    let load_time = t1.elapsed();
    if snapshot::graph_checksum(&reloaded.graph) != snapshot::graph_checksum(&loaded.graph)
        || reloaded.labels != loaded.labels
    {
        return Err(format!("round-trip verification failed for {out}"));
    }

    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out} ({format}): {} nodes / {} arcs ({bytes} bytes)",
        reloaded.graph.n(),
        reloaded.graph.m()
    );
    let ratio = parse_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9);
    println!("source load: {parse_time:.2?}; snapshot load: {load_time:.2?} ({ratio:.1}x)");
    Ok(())
}

/// Checks that an explicitly passed flag agrees with the value a loaded
/// pool was built with (pools pin their configuration; silently ignoring
/// a contradicting flag would be worse than an error).
fn check_pool_flag<T: PartialEq + std::fmt::Display>(
    flag: &str,
    given: Option<T>,
    pool_value: T,
) -> Result<(), String> {
    match given {
        Some(v) if v != pool_value => Err(format!(
            "--{flag} {v} contradicts the pool (built with {flag} = {pool_value}); \
             drop the flag or delete the pool file to rebuild"
        )),
        _ => Ok(()),
    }
}

/// Builds the shared server configuration from `query`/`serve` flags.
fn server_config(args: &Args, quiet: bool) -> Result<ServerConfig, String> {
    let config = ServerConfig {
        threads: args.get_parsed("threads", 4usize)?,
        pool_cache: args.get_parsed("pool-cache", 4usize)?,
        epsilon: args.get_parsed("eps", 0.1f64)?,
        ell: args.get_parsed("ell", 1.0f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        k_max: args.get_parsed("k", 50usize)?,
        sample_threads: 0,
        select_threads: args.get_parsed("select-threads", 1usize)?,
        select_strategy: match args.get("select-strategy") {
            None => tim_core::SelectStrategy::Auto,
            Some(v) => v.parse().map_err(|e| format!("--select-strategy: {e}"))?,
        },
        verbose: !quiet,
        // `--mmap` flips the weights default to "keep": a mapped graph
        // serves the probabilities baked into its v2 snapshot verbatim.
        weights: args
            .get("weights")
            .unwrap_or(if args.switch("mmap") { "keep" } else { "wc" })
            .to_string(),
        undirected: args.switch("undirected"),
        max_loaded: args.get_parsed("max-loaded", 8usize)?,
        pool_dir: args.get("pool-dir").map(std::path::PathBuf::from),
        persist_pools: args.switch("persist-pools"),
        admin: args.switch("admin"),
        event_loop: args.switch("event-loop"),
        mmap: args.switch("mmap"),
        mmap_pools: args.switch("mmap-pools"),
        idle_timeout: match args.get("idle-timeout") {
            None => None,
            Some(v) => {
                // try_from_secs_f64 also rejects NaN and out-of-range
                // values that from_secs_f64 would panic on.
                let dur = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0)
                    .and_then(|s| std::time::Duration::try_from_secs_f64(s).ok())
                    .ok_or_else(|| format!("--idle-timeout '{v}' must be a positive number"))?;
                Some(dur)
            }
        },
        max_conns: match args.get("max-conns") {
            None => None,
            Some(v) => Some(
                v.parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--max-conns '{v}' must be a positive integer"))?,
            ),
        },
    };
    if config.threads == 0 {
        return Err("--threads must be positive".into());
    }
    if config.pool_cache == 0 {
        return Err("--pool-cache must be positive".into());
    }
    if config.max_loaded == 0 {
        return Err("--max-loaded must be positive".into());
    }
    if config.persist_pools && config.pool_dir.is_none() {
        return Err("--persist-pools requires --pool-dir <dir>".into());
    }
    if config.mmap_pools && config.pool_dir.is_none() {
        return Err("--mmap-pools requires --pool-dir <dir> (it changes how \
             persisted pools are restored)"
            .into());
    }
    if config.idle_timeout.is_some() && !config.event_loop {
        return Err("--idle-timeout requires --event-loop".into());
    }
    if config.max_conns.is_some() && !config.event_loop {
        return Err("--max-conns requires --event-loop".into());
    }
    if config.mmap && config.weights != "keep" {
        return Err(format!(
            "--mmap requires --weights keep: probabilities are served verbatim \
             from the v2 snapshot (bake them in with `tim snapshot --format v2 \
             --weights {}` instead)",
            config.weights
        ));
    }
    Ok(config)
}

/// Builds the multi-graph catalog state `query` and `serve` share: the
/// positional graph (if given) is loaded eagerly and registered resident
/// as `default`; every `--graph name=path[::overrides]` and every file a
/// `--graphs` directory scan finds is registered for lazy loading.
/// Sessions start on `--default-graph`, defaulting to `default` when
/// present, else the first catalog name in sorted order. Both canonical
/// models are registered, so per-graph `model=` overrides can pick either
/// regardless of the global `--model`.
fn build_state(
    model: ModelKind,
    model_name: &str,
    args: &Args,
    config: ServerConfig,
) -> Result<ServerState<ModelKind>, String> {
    let mut catalog = GraphCatalog::new(model, model_name, config);
    for kind in [ModelKind::IndependentCascade, ModelKind::LinearThreshold] {
        if kind.tag() != model_name {
            catalog.register_model(kind.tag(), kind);
        }
    }
    if !args.positional.is_empty() {
        if args.switch("mmap") {
            // Mapped serving: register the positional snapshot as a lazy
            // path so the catalog attaches it as a zero-copy view instead
            // of decoding it onto the heap here.
            let path = args.positional(0, "input graph path")?;
            catalog.add_path(DEFAULT_GRAPH_NAME, path)?;
        } else {
            let LoadedGraph { graph, labels } = load(args)?;
            catalog.add_resident(DEFAULT_GRAPH_NAME, graph, LabelMap::new(labels))?;
        }
    }
    for spec in args.get_all("graph") {
        let (name, path, overrides) =
            tim_graph::catalog::parse_graph_spec_full(spec).map_err(|e| e.to_string())?;
        catalog.add_path_with(name, path, overrides)?;
    }
    if let Some(dir) = args.get("graphs") {
        for (name, path) in tim_graph::catalog::scan_graph_dir(dir).map_err(|e| e.to_string())? {
            catalog.add_path(name, path)?;
        }
    }
    if catalog.is_empty() {
        return Err(
            "no graphs: provide a positional <graph>, --graph name=path, or --graphs <dir>".into(),
        );
    }
    let default_graph = match args.get("default-graph") {
        Some(name) => name.to_string(),
        None if catalog.contains(DEFAULT_GRAPH_NAME) => DEFAULT_GRAPH_NAME.to_string(),
        None => catalog.names()[0].to_string(),
    };
    ServerState::from_catalog(catalog, default_graph)
}

fn query(args: &Args) -> Result<(), String> {
    let tag = args.get("model").unwrap_or("ic").to_lowercase();
    let model = ModelKind::from_tag(&tag).ok_or_else(|| format!("unknown --model '{tag}'"))?;
    query_with(model, &tag, args)
}

fn query_with(model: ModelKind, model_name: &str, args: &Args) -> Result<(), String> {
    let quiet = args.switch("quiet");
    let mut config = server_config(args, quiet)?;
    let pool_path = args.get("pool");
    let multi_graph = !args.get_all("graph").is_empty() || args.get("graphs").is_some();

    // A persisted pool pins its configuration: explicit flags must agree.
    // In the classic single-graph shape, absent flags inherit the pool's
    // values (so the session's default engine *is* the loaded pool). With
    // a multi-graph catalog the config is shared by *every* graph, so
    // inheriting would silently change unrelated graphs' provenance —
    // there the pool's values must be given explicitly.
    let loaded_pool = match pool_path {
        Some(p) if std::path::Path::new(p).exists() => {
            let pool = RrPool::load(p).map_err(|e| format!("loading pool {p}: {e}"))?;
            check_pool_flag(
                "eps",
                args.get("eps").map(|_| config.epsilon),
                pool.meta.epsilon,
            )?;
            check_pool_flag("ell", args.get("ell").map(|_| config.ell), pool.meta.ell)?;
            check_pool_flag(
                "seed",
                args.get("seed").map(|_| config.seed),
                pool.meta.seed,
            )?;
            check_pool_flag(
                "k",
                args.get("k").map(|_| config.k_max),
                pool.meta.k_max as usize,
            )?;
            if multi_graph {
                for (flag, given, pool_value) in [
                    ("eps", config.epsilon, pool.meta.epsilon),
                    ("ell", config.ell, pool.meta.ell),
                    ("seed", config.seed as f64, pool.meta.seed as f64),
                    ("k", config.k_max as f64, pool.meta.k_max as f64),
                ] {
                    if given != pool_value {
                        return Err(format!(
                            "--pool {p} pins {flag} = {pool_value}, but the catalog serves \
                             {flag} = {given}; pass --{flag} {pool_value} explicitly (pool \
                             provenance is not inherited by multi-graph catalogs)"
                        ));
                    }
                }
            } else {
                config.epsilon = pool.meta.epsilon;
                config.ell = pool.meta.ell;
                config.seed = pool.meta.seed;
                config.k_max = pool.meta.k_max as usize;
            }
            Some(pool)
        }
        _ => None,
    };

    let state = build_state(model, model_name, args, config)?;

    // Attach or build-and-save the persistent pool on the default graph —
    // the only case that loads the default graph eagerly; without --pool
    // every graph (the default included) loads lazily on first query.
    let mut watched_engine = None;
    if let Some(p) = pool_path {
        let default_state = state
            .catalog()
            .get(state.default_graph())
            .map_err(|e| format!("query: {e}"))?;
        match loaded_pool {
            Some(pool) => {
                let engine = QueryEngine::from_pool_store(
                    default_state.store().clone(),
                    model,
                    model_name,
                    pool,
                )
                .map_err(|e| format!("attaching pool {p}: {e} (delete the file to rebuild)"))?;
                let shared = default_state.preload(engine);
                if !quiet {
                    eprintln!(
                        "loaded pool {p}: theta = {}, warmed for k <= {}",
                        shared.pool_theta(),
                        shared.warmed_k()
                    );
                }
                watched_engine = Some(shared);
            }
            None => {
                let t0 = std::time::Instant::now();
                let shared = default_state.default_engine();
                if !quiet {
                    let cfg = default_state.config();
                    eprintln!(
                        "warmed pool: theta = {} in {:.2?} (k <= {}, eps = {}, ell = {})",
                        shared.pool_theta(),
                        t0.elapsed(),
                        cfg.k_max,
                        cfg.epsilon,
                        cfg.ell
                    );
                }
                shared
                    .to_pool()
                    .save_v2(p)
                    .map_err(|e| format!("saving pool {p}: {e}"))?;
                if !quiet {
                    eprintln!("saved pool to {p}");
                }
                watched_engine = Some(shared);
            }
        }
    }
    let theta_before = watched_engine.as_ref().map(|e| e.pool_theta());

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    catalog_query_session(&state, stdin.lock(), &mut stdout)?;

    // Persist growth so the next process benefits from it.
    if let (Some(p), Some(engine), Some(before)) = (pool_path, watched_engine, theta_before) {
        if engine.pool_theta() != before {
            engine
                .to_pool()
                .save(p)
                .map_err(|e| format!("re-saving pool {p}: {e}"))?;
            if !quiet {
                eprintln!("pool grew to theta = {}; re-saved {p}", engine.pool_theta());
            }
        }
    }
    Ok(())
}

/// Runs a `tim/2` session over `input`: one answer line on `out` per
/// request line, through the very same [`tim_server::Session`] machinery that serves
/// `tim serve` connections — so the two front ends cannot drift. The
/// 1 MiB request-line cap applies exactly as on TCP: an over-limit line
/// answers `error: …` and ends the session.
fn catalog_query_session<M: BackingModel + Send + Clone + 'static>(
    state: &ServerState<M>,
    input: impl Read,
    out: &mut impl Write,
) -> Result<(), String> {
    let mut reader = CappedLineReader::new(input);
    let mut session = state.session();
    let mut line = String::new();
    loop {
        match reader
            .read_line(&mut line)
            .map_err(|e| format!("reading queries: {e}"))?
        {
            CappedLine::Eof => break,
            CappedLine::Oversized => {
                writeln!(out, "{OVERSIZED_LINE_REPLY}")
                    .map_err(|e| format!("writing answer: {e}"))?;
                return Ok(()); // same contract as TCP: error, session over
            }
            CappedLine::Line => {
                for answer in session.push_line(&line) {
                    writeln!(out, "{answer}").map_err(|e| format!("writing answer: {e}"))?;
                }
                if session.closed() {
                    return Ok(()); // framing violation: error answered, session over
                }
            }
        }
    }
    for answer in session.finish() {
        writeln!(out, "{answer}").map_err(|e| format!("writing answer: {e}"))?;
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    let tag = args.get("model").unwrap_or("ic").to_lowercase();
    let model = ModelKind::from_tag(&tag).ok_or_else(|| format!("unknown --model '{tag}'"))?;
    serve_with(model, &tag, args)
}

fn serve_with(model: ModelKind, model_name: &str, args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7171");
    let quiet = args.switch("quiet");
    let config = server_config(args, quiet).map_err(|e| format!("serve: {e}"))?;
    let state = Arc::new(build_state(model, model_name, args, config)?);

    // Pre-seed the default graph's pool cache from a persisted `.timp`
    // pool (keyed by the pool's own provenance, which need not match the
    // serving defaults). This happens *before* the listening line is
    // printed: a missing or corrupt pool must fail here, not after
    // scripts have already parsed the address and assumed the server is
    // up.
    if let Some(p) = args.get("pool") {
        if !std::path::Path::new(p).exists() {
            return Err(format!("serve: pool file {p} does not exist"));
        }
        let default_state = state
            .catalog()
            .get(state.default_graph())
            .map_err(|e| format!("serve: {e}"))?;
        let pool = RrPool::load(p).map_err(|e| format!("loading pool {p}: {e}"))?;
        let engine =
            QueryEngine::from_pool_store(default_state.store().clone(), model, model_name, pool)
                .map_err(|e| format!("attaching pool {p}: {e}"))?;
        let shared = default_state.preload(engine);
        if !quiet {
            eprintln!(
                "preloaded pool {p}: theta = {}, warmed for k <= {}",
                shared.pool_theta(),
                shared.warmed_k()
            );
        }
    }

    // Bind before the (possibly long) default-pool warm-up: the address
    // is known immediately, and connections queue in the listen backlog
    // until the workers start.
    let server =
        Server::bind(Arc::clone(&state), addr).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flushing stdout: {e}"))?;

    let t0 = std::time::Instant::now();
    let default_state = state
        .catalog()
        .get(state.default_graph())
        .map_err(|e| format!("serve: {e}"))?;
    let theta = default_state.warm_default();
    if !quiet {
        let config = state.config();
        eprintln!(
            "default pool ready on graph '{}': theta = {theta} in {:.2?} \
             (k <= {}, eps = {}, ell = {}, seed = {})",
            state.default_graph(),
            t0.elapsed(),
            config.k_max,
            config.epsilon,
            config.ell,
            config.seed
        );
        eprintln!(
            "serving {} graph(s) with {} {}, pool cache capacity {} per graph, \
             up to {} graphs loaded",
            state.catalog().len(),
            config.threads,
            if config.event_loop {
                "event-loop shards"
            } else {
                "workers"
            },
            config.pool_cache,
            config.max_loaded
        );
        if config.event_loop {
            eprintln!(
                "event loop: idle timeout {}, connection cap {}",
                match config.idle_timeout {
                    Some(t) => format!("{:.1}s", t.as_secs_f64()),
                    None => "off".to_string(),
                },
                match config.max_conns {
                    Some(n) => n.to_string(),
                    None => "off".to_string(),
                }
            );
        }
        if let Some(dir) = &config.pool_dir {
            eprintln!(
                "warm state in {} ({}); admin verbs {}",
                dir.display(),
                if config.persist_pools {
                    "read-through + write-back"
                } else {
                    "read-through only"
                },
                if config.admin { "enabled" } else { "disabled" }
            );
        }
    }
    server.start().wait();
    Ok(())
}

/// Pipes `input` to a connected server and copies the response stream to
/// `out`, counting `error: …` response lines — the scripted-session core
/// of `tim client`, factored out so tests can drive it without stdin.
fn client_session<I: Read + Send, O: Write>(
    stream: std::net::TcpStream,
    input: I,
    out: &mut O,
) -> Result<u64, String> {
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cloning connection: {e}"))?;
    let mut input = input;
    std::thread::scope(|scope| {
        // Uploader thread: input → server, then half-close so the server
        // sees EOF once our queries are sent; responses keep flowing back.
        let upload = scope.spawn(move || -> Result<(), String> {
            std::io::copy(&mut input, &mut writer).map_err(|e| format!("sending queries: {e}"))?;
            writer
                .shutdown(std::net::Shutdown::Write)
                .map_err(|e| format!("closing send side: {e}"))?;
            Ok(())
        });
        let mut errors = 0u64;
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("reading answers: {e}"))?;
            if n == 0 {
                break;
            }
            out.write_all(line.as_bytes())
                .map_err(|e| format!("writing answer: {e}"))?;
            if line.starts_with("error: ") {
                errors += 1;
            }
        }
        out.flush().map_err(|e| format!("flushing answers: {e}"))?;
        upload
            .join()
            .map_err(|_| "uploader panicked".to_string())??;
        Ok(errors)
    })
}

/// Connects to `addr`, bounded by `timeout` when given: a dead or
/// unreachable server fails with a clear error instead of hanging in the
/// kernel's (minutes-long) connect retry.
fn client_connect(
    addr: &str,
    timeout: Option<std::time::Duration>,
) -> Result<std::net::TcpStream, String> {
    use std::net::{TcpStream, ToSocketAddrs};
    let Some(timeout) = timeout else {
        return TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"));
    };
    let resolved: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .collect();
    let mut last_err = None;
    for a in &resolved {
        match TcpStream::connect_timeout(a, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(match last_err {
        Some(e) if e.kind() == std::io::ErrorKind::TimedOut => format!(
            "connecting to {addr}: timed out after {:.1}s (server down or unreachable?)",
            timeout.as_secs_f64()
        ),
        Some(e) => format!("connecting to {addr}: {e}"),
        None => format!("resolving {addr}: no addresses"),
    })
}

fn client(args: &Args) -> Result<(), String> {
    let addr = args
        .get("addr")
        .ok_or_else(|| "client: --addr <host:port> is required".to_string())?;
    let timeout = match args.get("timeout") {
        None => None,
        Some(v) => {
            // try_from_secs_f64 also rejects NaN and values too large for
            // a Duration — from_secs_f64 would panic on those.
            let dur = v
                .parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0)
                .and_then(|s| std::time::Duration::try_from_secs_f64(s).ok())
                .ok_or_else(|| format!("client: --timeout '{v}' must be a positive number"))?;
            Some(dur)
        }
    };
    let stream = client_connect(addr, timeout)?;
    if timeout.is_some() {
        // Bound every read the same way: a server that accepts but never
        // answers must not hang a scripted session forever.
        stream
            .set_read_timeout(timeout)
            .map_err(|e| format!("setting read timeout: {e}"))?;
        // And every write: a server that stops *reading* (wedged worker,
        // suspended process) eventually fills the socket buffer, and an
        // unbounded write blocks there forever. Set before the session
        // clones the stream — timeouts live on the shared file
        // description, so the uploader inherits them.
        stream
            .set_write_timeout(timeout)
            .map_err(|e| format!("setting write timeout: {e}"))?;
    }
    let mut stdout = std::io::stdout();
    let errors =
        client_session(stream, std::io::stdin(), &mut stdout).map_err(|e| match timeout {
            Some(t) if e.contains("reading answers") => format!(
                "{e} (no response within {:.1}s — server hung or gone?)",
                t.as_secs_f64()
            ),
            Some(t) if e.contains("sending queries") => format!(
                "{e} (write blocked for {:.1}s — server not reading?)",
                t.as_secs_f64()
            ),
            _ => e,
        })?;
    if errors > 0 {
        // Scripted sessions (kick-tires, CI) must be able to assert clean
        // runs: any `error: …` response line fails the whole session.
        eprintln!("tim client: {errors} error response(s) in session");
        std::process::exit(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tim_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn generate_then_stats_then_select_round_trip() {
        let dir = tmpdir();
        let path = dir.join("ba.txt");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "generate ba --out {path_s} --n 500 --param 3 --seed 1"
        )))
        .unwrap();
        assert!(path.exists());
        dispatch(&argv(&format!("stats {path_s}"))).unwrap();
        dispatch(&argv(&format!(
            "select {path_s} -k 5 --algo tim+ --eps 0.8 --seed 2 --quiet"
        )))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_requires_k() {
        let dir = tmpdir();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let path_s = path.to_str().unwrap();
        assert!(dispatch(&argv(&format!("select {path_s}"))).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_maps_labels_and_reports() {
        let dir = tmpdir();
        let path = dir.join("labels.txt");
        // Labels 100 -> 200 -> 300 with p = 1.
        std::fs::write(&path, "100 200 1.0\n200 300 1.0\n").unwrap();
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 100 --weights keep --runs 100"
        )))
        .unwrap();
        // Unknown label is an error.
        assert!(dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 999 --weights keep"
        )))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_with_each_cheap_algo_works() {
        let dir = tmpdir();
        let path = dir.join("algos.txt");
        std::fs::write(
            &path,
            (0..50u32)
                .map(|i| format!("{} {}\n", i, (i + 1) % 50))
                .collect::<String>(),
        )
        .unwrap();
        let path_s = path.to_str().unwrap();
        for algo in ["degree", "degreediscount", "pagerank", "simpath", "imm"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 3 --algo {algo} --eps 1.0 --runs 100 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        assert!(dispatch(&argv("generate blah --out /tmp/x.txt")).is_err());
    }

    #[test]
    fn snapshot_round_trip_preserves_select_output() {
        let dir = tmpdir();
        let text = dir.join("snap_src.txt");
        let timg = dir.join("snap_src.timg");
        // Sparse labels exercise the label map through the snapshot.
        std::fs::write(
            &text,
            (0..60u32)
                .map(|i| format!("{} {}\n", i * 10 + 5, ((i + 1) % 60) * 10 + 5))
                .collect::<String>(),
        )
        .unwrap();
        let (text_s, timg_s) = (text.to_str().unwrap(), timg.to_str().unwrap());
        dispatch(&argv(&format!("snapshot {text_s} --out {timg_s}"))).unwrap();
        // `select` on the snapshot goes through the same pipeline (weights
        // re-applied over preserved probabilities) => identical seeds.
        let run = |path: &str| {
            let loaded = io::load_graph(path, false).unwrap();
            let mut g = loaded.graph;
            weights::assign_weighted_cascade(&mut g);
            let r = TimPlus::new(IndependentCascade)
                .epsilon(1.0)
                .seed(3)
                .run(&g, 4);
            r.seeds
                .iter()
                .map(|&v| loaded.labels[v as usize])
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(text_s), run(timg_s));
        // stats and select accept the snapshot transparently.
        dispatch(&argv(&format!("stats {timg_s}"))).unwrap();
        dispatch(&argv(&format!(
            "select {timg_s} -k 2 --eps 1.0 --seed 1 --quiet"
        )))
        .unwrap();
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&timg).ok();
    }

    #[test]
    fn snapshot_requires_out_flag() {
        let dir = tmpdir();
        let path = dir.join("no_out.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        assert!(dispatch(&argv(&format!("snapshot {}", path.display()))).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// Single-graph catalog state over a parsed edge list, mirroring what
    /// `tim query <graph>` builds.
    fn session_state(
        loaded: LoadedGraph,
        eps: f64,
        seed: u64,
        k_max: usize,
    ) -> ServerState<IndependentCascade> {
        let LoadedGraph { mut graph, labels } = loaded;
        weights::assign_weighted_cascade(&mut graph);
        ServerState::new(
            graph,
            LabelMap::new(labels),
            IndependentCascade,
            "ic",
            ServerConfig {
                epsilon: eps,
                seed,
                k_max,
                sample_threads: 1,
                ..ServerConfig::default()
            },
        )
    }

    fn run_session<M: BackingModel + Send + Clone + 'static>(
        state: &ServerState<M>,
        input: &str,
    ) -> Vec<String> {
        let mut out = Vec::new();
        catalog_query_session(state, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn query_session_answers_match_fresh_select() {
        // Sparse labels so the label round trip is exercised.
        let n = 120u64;
        let edges: String = (0..n)
            .flat_map(|i| {
                [
                    format!("{} {}\n", i * 7, ((i + 1) % n) * 7),
                    format!("{} {}\n", i * 7, ((i + 5) % n) * 7),
                ]
            })
            .collect();
        let loaded = io::read_edge_list(edges.as_bytes(), false).unwrap();
        let mut g_fresh = io::read_edge_list(edges.as_bytes(), false).unwrap().graph;
        weights::assign_weighted_cascade(&mut g_fresh);
        let fresh = TimPlus::new(IndependentCascade)
            .epsilon(0.9)
            .seed(11)
            .run(&g_fresh, 5);
        let want: Vec<String> = fresh
            .seeds
            .iter()
            .map(|&v| loaded.labels[v as usize].to_string())
            .collect();

        let state = session_state(loaded, 0.9, 11, 8);
        let input = format!(
            "# comment\n\nselect 5\nselect 3 fast\neval {}\nmarginal {} {}\nbogus\nselect 0\n",
            want.join(","),
            want[0],
            want[1]
        );
        let lines = run_session(&state, &input);
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], format!("seeds: {}", want.join(" ")));
        assert!(lines[1].starts_with("seeds: "));
        assert_eq!(lines[1].split_whitespace().count(), 4); // "seeds:" + 3
        assert!(lines[2].starts_with("spread: "));
        assert!(lines[3].starts_with("marginal: "));
        assert!(lines[4].starts_with("error: unknown query"));
        assert!(lines[5].starts_with("error: select"));
    }

    #[test]
    fn query_session_reports_unknown_labels() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let state = session_state(loaded, 1.0, 0, 2);
        let lines = run_session(&state, "eval 999\n");
        assert!(lines[0].contains("label 999"));
    }

    #[test]
    fn query_session_enforces_the_line_cap_like_tcp() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let state = session_state(loaded, 1.0, 0, 2);
        // ping, then an over-limit line, then a query that must NOT run
        // (the session ends at the oversized line, exactly like TCP).
        let input = format!("ping\n{}\nselect 1\n", "a".repeat((1 << 20) + 10));
        let lines = run_session(&state, &input);
        assert_eq!(
            lines,
            vec!["pong tim/3".to_string(), OVERSIZED_LINE_REPLY.to_string()]
        );
        // A line of exactly the cap still answers.
        let comment = format!("#{}", "c".repeat((1 << 20) - 1));
        let lines = run_session(&state, &format!("{comment}\nping\n"));
        assert_eq!(lines, vec!["pong tim/3".to_string()]);
    }

    #[test]
    fn query_session_supports_batch_and_session_verbs() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let state = session_state(loaded, 1.0, 0, 2);
        let plain = run_session(&state, "select 1\neval 0,1\nping\n");
        let batched = run_session(&state, "batch 3\nselect 1\neval 0,1\nping\n");
        assert_eq!(plain, batched, "batch is a pure transport optimization");
        let verbs = run_session(&state, "graphs\nuse default\nstats\n");
        assert_eq!(verbs[0], "graphs: default");
        assert_eq!(verbs[1], "using default");
        assert!(verbs[2].starts_with("stats: graph=default n=3 m=3 "));
    }

    #[test]
    fn pool_provenance_is_not_inherited_by_multi_graph_catalogs() {
        let dir = tmpdir();
        let (g1, g2) = (dir.join("pool_g1.txt"), dir.join("pool_g2.txt"));
        std::fs::write(&g1, "0 1\n1 2\n2 0\n").unwrap();
        std::fs::write(&g2, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        // A pool pinned to a non-default provenance (eps = 0.7, seed = 5).
        let pool = dir.join("prov.timp");
        let loaded = io::load_graph(&g1, false).unwrap();
        let mut graph = loaded.graph;
        weights::assign_weighted_cascade(&mut graph);
        let mut engine = QueryEngine::new(graph, IndependentCascade, "ic")
            .epsilon(0.7)
            .seed(5)
            .k_max(3);
        engine.warm();
        engine.to_pool().save(&pool).unwrap();

        // Multi-graph catalog + absent flags: the pool's provenance must
        // NOT leak into the shared config — explicit flags are required.
        let err = dispatch(&argv(&format!(
            "query {} --graph extra={} --pool {}",
            g1.display(),
            g2.display(),
            pool.display()
        )))
        .unwrap_err();
        assert!(err.contains("not inherited"), "got: {err}");
        // Contradicting explicit flags still fail the single-graph way.
        let err = dispatch(&argv(&format!(
            "query {} --eps 0.2 --pool {}",
            g1.display(),
            pool.display()
        )))
        .unwrap_err();
        assert!(err.contains("contradicts the pool"), "got: {err}");
        for f in [&g1, &g2, &pool] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn client_session_counts_error_responses() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let LoadedGraph { mut graph, labels } = loaded;
        weights::assign_weighted_cascade(&mut graph);
        let state = Arc::new(ServerState::new(
            graph,
            LabelMap::new(labels),
            IndependentCascade,
            "ic",
            ServerConfig {
                threads: 1,
                epsilon: 1.0,
                k_max: 2,
                sample_threads: 1,
                ..ServerConfig::default()
            },
        ));
        let handle = Server::bind(Arc::clone(&state), "127.0.0.1:0")
            .unwrap()
            .start();

        let connect = || std::net::TcpStream::connect(handle.addr()).unwrap();
        let mut out = Vec::new();
        let errors = client_session(
            connect(),
            "ping\nbogus\nselect 1\nnope\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert_eq!(errors, 2, "two error responses counted");
        assert!(String::from_utf8(out).unwrap().starts_with("pong tim/3\n"));

        let mut out = Vec::new();
        let errors = client_session(connect(), "ping\nselect 1\n".as_bytes(), &mut out).unwrap();
        assert_eq!(errors, 0, "clean session");
        handle.stop();
    }

    #[test]
    fn serve_rejects_bad_flags_fast() {
        let dir = tmpdir();
        let path = dir.join("srv.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let path_s = path.to_str().unwrap();
        // Bind happens before any pool warm-up, so these fail quickly.
        assert!(dispatch(&argv(&format!("serve {path_s} --addr not-an-addr"))).is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --threads 0"
        )))
        .is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --pool-cache 0"
        )))
        .is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --pool /nonexistent.timp"
        )))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn client_requires_addr_and_reports_connect_failure() {
        assert!(dispatch(&argv("client")).is_err());
        // A port nothing listens on: connect must error out, not hang.
        assert!(dispatch(&argv("client --addr 127.0.0.1:1")).is_err());
    }

    #[test]
    fn query_session_answers_ping() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let state = session_state(loaded, 1.0, 0, 2);
        assert_eq!(
            run_session(&state, "ping\n"),
            vec!["pong tim/3".to_string()]
        );
    }

    #[test]
    fn multi_graph_flags_build_a_catalog() {
        let dir = tmpdir();
        let (a, b) = (dir.join("cat_a.txt"), dir.join("cat_b.txt"));
        std::fs::write(&a, "0 1\n1 2\n2 0\n").unwrap();
        std::fs::write(&b, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        let args = Args::parse(&argv(&format!(
            "--graph a={} --graph b={} --eps 1.0 --default-graph a",
            a.display(),
            b.display()
        )))
        .unwrap();
        let config = server_config(&args, true).unwrap();
        let state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
        assert_eq!(state.default_graph(), "a");
        let lines = run_session(&state, "graphs\nstats\nuse b\nstats\nuse nope\n");
        assert_eq!(lines[0], "graphs: a b");
        assert!(lines[1].starts_with("stats: graph=a n=3 "));
        assert_eq!(lines[2], "using b");
        assert!(lines[3].starts_with("stats: graph=b n=4 "));
        assert!(lines[4].starts_with("error: use: unknown graph"));
        // Duplicate names and empty catalogs are rejected.
        let dup = Args::parse(&argv(&format!(
            "--graph a={} --graph a={}",
            a.display(),
            b.display()
        )))
        .unwrap();
        let config = server_config(&dup, true).unwrap();
        assert!(build_state(ModelKind::IndependentCascade, "ic", &dup, config).is_err());
        let none = Args::parse(&argv("--eps 1.0")).unwrap();
        let config = server_config(&none, true).unwrap();
        assert!(build_state(ModelKind::IndependentCascade, "ic", &none, config).is_err());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn pool_dir_flags_wire_into_the_config() {
        let args = Args::parse(&argv(
            "g.txt --pool-dir /tmp/pd --persist-pools --mmap-pools --admin",
        ))
        .unwrap();
        let config = server_config(&args, true).unwrap();
        assert_eq!(
            config.pool_dir.as_deref(),
            Some(std::path::Path::new("/tmp/pd"))
        );
        assert!(config.persist_pools);
        assert!(config.mmap_pools);
        assert!(config.admin);
        let plain = Args::parse(&argv("g.txt")).unwrap();
        let config = server_config(&plain, true).unwrap();
        assert!(config.pool_dir.is_none() && !config.persist_pools && !config.admin);
        assert!(!config.mmap_pools);
        // Write-back without a store location is a config error, and so is
        // asking for mapped restores with nowhere to restore from.
        let bad = Args::parse(&argv("g.txt --persist-pools")).unwrap();
        assert!(server_config(&bad, true)
            .unwrap_err()
            .contains("requires --pool-dir"));
        let bad = Args::parse(&argv("g.txt --mmap-pools")).unwrap();
        assert!(server_config(&bad, true)
            .unwrap_err()
            .contains("--mmap-pools requires --pool-dir"));
    }

    #[test]
    fn warm_restart_session_reuses_spilled_pools() {
        let dir = tmpdir();
        let graph = dir.join("warm_cli.txt");
        std::fs::write(
            &graph,
            (0..40u32)
                .flat_map(|i| {
                    [
                        format!("{} {}\n", i, (i + 1) % 40),
                        format!("{} {}\n", i, (i + 7) % 40),
                    ]
                })
                .collect::<String>(),
        )
        .unwrap();
        let pool_dir = dir.join("warm_cli_pools");
        std::fs::remove_dir_all(&pool_dir).ok();
        let flags = format!(
            "{} --eps 1.0 --seed 4 -k 3 --pool-dir {}",
            graph.display(),
            pool_dir.display()
        );
        let session = "select 3\nselect 2\neval 0,1\nselect 2 fast\n";

        // Cold run with write-back: builds and spills the default pool.
        let args = Args::parse(&argv(&format!("{flags} --persist-pools"))).unwrap();
        let config = server_config(&args, true).unwrap();
        let cold_state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
        let cold = run_session(&cold_state, session);
        let s = cold_state.default_state().cache_stats();
        assert_eq!((s.builds, s.loads), (1, 0), "cold run samples");
        assert!(s.spills >= 1, "cold run spills");
        drop(cold_state);

        // Warm restart (fresh state, same store): zero pool builds,
        // byte-identical answers.
        let args = Args::parse(&argv(&flags)).unwrap();
        let config = server_config(&args, true).unwrap();
        let warm_state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
        let warm = run_session(&warm_state, session);
        assert_eq!(warm, cold, "restart answers byte-identical");
        let s = warm_state.default_state().cache_stats();
        assert_eq!((s.builds, s.loads), (0, 1), "warm run loads, never builds");
        drop(warm_state);

        // Warm restart with --mmap-pools: the v2 spill is served as a
        // zero-copy mapping instead of being decoded — same answers, still
        // zero builds.
        let args = Args::parse(&argv(&format!("{flags} --mmap-pools"))).unwrap();
        let config = server_config(&args, true).unwrap();
        let mapped_state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
        let mapped = run_session(&mapped_state, session);
        assert_eq!(mapped, cold, "mapped restart answers byte-identical");
        let s = mapped_state.default_state().cache_stats();
        assert_eq!(
            (s.builds, s.loads),
            (0, 1),
            "mapped run opens, never builds"
        );
        std::fs::remove_file(&graph).ok();
        std::fs::remove_dir_all(&pool_dir).ok();
    }

    #[test]
    fn graph_override_specs_flow_from_the_flag() {
        let dir = tmpdir();
        let path = dir.join("ovr.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let args = Args::parse(&argv(&format!(
            "--graph tuned={}::model=lt,eps=0.9,seed=6 --eps 1.0",
            path.display()
        )))
        .unwrap();
        let config = server_config(&args, true).unwrap();
        let state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
        let lines = run_session(&state, "stats\n");
        assert!(
            lines[0].contains("model=lt eps=0.9 ell=1 seed=6"),
            "got {}",
            lines[0]
        );
        // A bad override fails at startup, not at first query.
        let bad = Args::parse(&argv(&format!(
            "--graph tuned={}::model=bogus",
            path.display()
        )))
        .unwrap();
        let config = server_config(&bad, true).unwrap();
        assert!(
            build_state(ModelKind::IndependentCascade, "ic", &bad, config)
                .unwrap_err()
                .contains("unknown model 'bogus'")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn client_timeout_flag_is_validated_and_bounds_connects() {
        // Bad values are rejected up front.
        assert!(dispatch(&argv("client --addr 127.0.0.1:1 --timeout abc"))
            .unwrap_err()
            .contains("--timeout"));
        assert!(dispatch(&argv("client --addr 127.0.0.1:1 --timeout 0"))
            .unwrap_err()
            .contains("--timeout"));
        // A dead port errors out promptly with the timeout set (the
        // refused connect is immediate on loopback either way).
        assert!(dispatch(&argv("client --addr 127.0.0.1:1 --timeout 0.5")).is_err());
    }

    #[test]
    fn client_write_timeout_bounds_blocked_writes() {
        // Regression: a server that accepts but never *reads* eventually
        // fills the socket buffer; without a write timeout the uploader
        // blocks forever in write(2) and the session can never end (the
        // scoped uploader thread pins it even after the read times out).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            // Accept, then hold the connection open without reading
            // until the test finishes.
            let conn = listener.accept().map(|(c, _)| c);
            let _ = done_rx.recv_timeout(std::time::Duration::from_secs(60));
            drop(conn);
        });
        let timeout = Some(std::time::Duration::from_millis(300));
        let stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(timeout).unwrap();
        stream.set_write_timeout(timeout).unwrap();
        // Far more input than loopback buffering can absorb.
        let input = std::io::repeat(b'#').take(64 << 20);
        let started = std::time::Instant::now();
        let mut out = Vec::new();
        let err = client_session(stream, input, &mut out).unwrap_err();
        assert!(
            err.contains("sending queries") || err.contains("reading answers"),
            "timed out on the stalled session: {err}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "session ended promptly instead of hanging"
        );
        done_tx.send(()).ok();
        holder.join().unwrap();
    }

    #[test]
    fn serve_event_loop_flags_are_validated() {
        let parse = |s: &str| server_config(&Args::parse(&argv(s)).unwrap(), true);
        let config = parse("g.txt --event-loop --idle-timeout 2.5 --max-conns 100").unwrap();
        assert!(config.event_loop);
        assert_eq!(
            config.idle_timeout,
            Some(std::time::Duration::from_millis(2500))
        );
        assert_eq!(config.max_conns, Some(100));
        let plain = parse("g.txt").unwrap();
        assert!(!plain.event_loop && plain.idle_timeout.is_none() && plain.max_conns.is_none());
        // The knobs are event-loop semantics: silently ignoring them on
        // the blocking server would be worse than refusing.
        assert!(parse("g.txt --idle-timeout 2")
            .unwrap_err()
            .contains("requires --event-loop"));
        assert!(parse("g.txt --max-conns 10")
            .unwrap_err()
            .contains("requires --event-loop"));
        assert!(parse("g.txt --event-loop --idle-timeout 0")
            .unwrap_err()
            .contains("--idle-timeout"));
        assert!(parse("g.txt --event-loop --idle-timeout nah")
            .unwrap_err()
            .contains("--idle-timeout"));
        assert!(parse("g.txt --event-loop --max-conns 0")
            .unwrap_err()
            .contains("--max-conns"));
    }

    #[test]
    fn snapshot_format_v2_writes_a_servable_snapshot() {
        let dir = tmpdir();
        let text = dir.join("fmt_src.txt");
        let v2 = dir.join("fmt_src_v2.timg");
        std::fs::write(
            &text,
            (0..50u32)
                .map(|i| format!("{} {}\n", i, (i + 1) % 50))
                .collect::<String>(),
        )
        .unwrap();
        dispatch(&argv(&format!(
            "snapshot {} --out {} --format v2 --weights wc",
            text.display(),
            v2.display()
        )))
        .unwrap();
        assert_eq!(snapshot::snapshot_version(&v2).unwrap(), Some(2));
        // The v2 file is transparently loadable by every heap consumer.
        dispatch(&argv(&format!("stats {}", v2.display()))).unwrap();
        // Unknown formats are rejected.
        assert!(dispatch(&argv(&format!(
            "snapshot {} --out {} --format v9",
            text.display(),
            v2.display()
        )))
        .unwrap_err()
        .contains("--format"));
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn mmap_flag_requires_keep_weights() {
        // --mmap alone implies keep; an explicit contradiction errors.
        let ok = Args::parse(&argv("g.timg --mmap")).unwrap();
        assert_eq!(server_config(&ok, true).unwrap().weights, "keep");
        assert!(server_config(&ok, true).unwrap().mmap);
        let bad = Args::parse(&argv("g.timg --mmap --weights wc")).unwrap();
        assert!(server_config(&bad, true)
            .unwrap_err()
            .contains("--mmap requires --weights keep"));
    }

    #[test]
    fn mmap_query_session_answers_match_heap_serving() {
        let dir = tmpdir();
        let text = dir.join("mm_src.txt");
        let v2 = dir.join("mm_src_v2.timg");
        // Sparse labels so the mapped label section is exercised too.
        std::fs::write(
            &text,
            (0..80u64)
                .flat_map(|i| {
                    [
                        format!("{} {}\n", i * 3, ((i + 1) % 80) * 3),
                        format!("{} {}\n", i * 3, ((i + 9) % 80) * 3),
                    ]
                })
                .collect::<String>(),
        )
        .unwrap();
        // Bake WC probabilities into a v2 snapshot.
        dispatch(&argv(&format!(
            "snapshot {} --out {} --format v2 --weights wc",
            text.display(),
            v2.display()
        )))
        .unwrap();

        let session = "select 3\nselect 2 fast\neval 0,3\nmarginal 0 3\nstats\n";
        let run = |flags: &str| {
            let args = Args::parse(&argv(&format!(
                "{} --eps 1.0 --seed 7 -k 4 {flags}",
                v2.display()
            )))
            .unwrap();
            let config = server_config(&args, true).unwrap();
            let state = build_state(ModelKind::IndependentCascade, "ic", &args, config).unwrap();
            run_session(&state, session)
        };
        // Heap serving decodes the v2 snapshot eagerly; --mmap serves the
        // same file as a zero-copy view. Answers must be byte-identical.
        let heap = run("--weights keep");
        let mapped = run("--mmap");
        assert_eq!(heap, mapped, "mmap serving must not change any answer");
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn pool_flag_contradiction_is_caught() {
        assert!(check_pool_flag("eps", Some(0.2), 0.1).is_err());
        assert!(check_pool_flag("eps", Some(0.1), 0.1).is_ok());
        assert!(check_pool_flag::<f64>("eps", None, 0.1).is_ok());
    }

    #[test]
    fn weights_flag_variants_parse() {
        let dir = tmpdir();
        let path = dir.join("w.txt");
        std::fs::write(&path, "0 1 0.5\n1 2 0.5\n").unwrap();
        let path_s = path.to_str().unwrap();
        for w in ["wc", "lt", "keep", "const:0.2", "tri"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 1 --weights {w} --eps 1.0 --runs 50 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        }
        assert!(dispatch(&argv(&format!("select {path_s} -k 1 --weights bogus"))).is_err());
        std::fs::remove_file(&path).ok();
    }
}
