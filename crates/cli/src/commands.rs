//! The four subcommands: select, evaluate, stats, generate.

use crate::args::{parse_id_list, Args};
use tim_baselines::{
    celf::CelfGreedy, degree_discount::DegreeDiscount, high_degree::HighDegree, irie::Irie,
    pagerank::PageRank, ris::Ris, simpath::SimPath, SeedSelector,
};
use tim_core::{Imm, Tim, TimPlus};
use tim_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold, SpreadEstimator};
use tim_eval::Dataset;
use tim_graph::io::LoadedGraph;
use tim_graph::{analysis, io, weights, Graph, NodeId};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  tim select   <edges.txt> -k <K> [--algo tim+|tim|imm|ris|celf|celf++|greedy|irie|simpath|degree|degreediscount|pagerank]
               [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--runs 10000] [--undirected] [--quiet]
  tim evaluate <edges.txt> --seeds <id,id,...> [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri]
               [--runs 10000] [--seed 0] [--undirected]
  tim stats    <edges.txt> [--undirected]
  tim generate <ba|gnm|ws|powerlaw|nethept|epinions|dblp|livejournal|twitter>
               --out <path> [--n 10000] [--param 4] [--scale 1.0] [--seed 0]";

/// Entry point: dispatches on the subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| "missing subcommand".to_string())?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "select" => select(&args),
        "evaluate" => evaluate(&args),
        "stats" => stats(&args),
        "generate" => generate(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Loads the input graph and applies the requested weight model.
fn load(args: &Args) -> Result<LoadedGraph, String> {
    let path = args.positional(0, "input edge-list path")?;
    let mut loaded = io::load_edge_list(path, args.switch("undirected"))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    match args.get("weights").unwrap_or("wc") {
        "wc" => weights::assign_weighted_cascade(&mut loaded.graph),
        "lt" => weights::assign_lt_normalized(&mut loaded.graph, seed ^ 0x17),
        "tri" => weights::assign_trivalency(&mut loaded.graph, seed ^ 0x3),
        "keep" => {} // probabilities from the file
        other => {
            if let Some(p) = other.strip_prefix("const:") {
                let p: f32 = p
                    .parse()
                    .map_err(|_| format!("--weights const: bad probability '{p}'"))?;
                weights::assign_constant(&mut loaded.graph, p);
            } else {
                return Err(format!("unknown --weights '{other}'"));
            }
        }
    }
    Ok(loaded)
}

#[allow(clippy::too_many_arguments)] // flat plumbing of CLI flags
fn run_selection<M: DiffusionModel + Sync + Clone>(
    algo: &str,
    model: M,
    graph: &Graph,
    k: usize,
    eps: f64,
    ell: f64,
    seed: u64,
    runs: usize,
) -> Result<(Vec<NodeId>, String), String> {
    let seeds = match algo {
        "tim+" => {
            TimPlus::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "tim" => {
            Tim::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "imm" => {
            Imm::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "ris" => Ris::new(model)
            .epsilon(eps.max(0.3))
            .tau_constant(0.1)
            .seed(seed)
            .select(graph, k),
        "celf" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Celf)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "celf++" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::CelfPlusPlus)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "greedy" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Plain)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "irie" => Irie::new(model).seed(seed).select(graph, k),
        other => return Err(format!("unknown --algo '{other}'")),
    };
    Ok((seeds, algo.to_string()))
}

fn select(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let k: usize = args.get_parsed("k", 0usize)?;
    if k == 0 {
        return Err("select: -k <K> is required and must be positive".into());
    }
    let algo = args.get("algo").unwrap_or("tim+").to_lowercase();
    let model_name = args.get("model").unwrap_or("ic").to_lowercase();
    let eps: f64 = args.get_parsed("eps", 0.1f64)?;
    let ell: f64 = args.get_parsed("ell", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let runs: usize = args.get_parsed("runs", 10_000usize)?;

    // Model-independent heuristics first.
    let seeds = match algo.as_str() {
        "degree" => HighDegree.select(g, k),
        "degreediscount" => DegreeDiscount::new().select(g, k),
        "pagerank" => PageRank::new().select(g, k),
        "simpath" => SimPath::new().select(g, k),
        _ => match model_name.as_str() {
            "ic" => run_selection(&algo, IndependentCascade, g, k, eps, ell, seed, runs)?.0,
            "lt" => run_selection(&algo, LinearThreshold, g, k, eps, ell, seed, runs)?.0,
            other => return Err(format!("unknown --model '{other}'")),
        },
    };

    let labels: Vec<u64> = seeds.iter().map(|&v| loaded.label_of(v)).collect();
    if args.switch("quiet") {
        for l in &labels {
            println!("{l}");
        }
        return Ok(());
    }
    println!(
        "graph: n = {}, m = {} | algo = {algo}, model = {model_name}, k = {k}",
        g.n(),
        g.m()
    );
    println!("seeds (original labels): {labels:?}");
    let spread = match model_name.as_str() {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
        _ => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
    };
    println!("estimated spread ({runs} MC runs): {spread:.1}");
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let wanted = parse_id_list(
        args.get("seeds")
            .ok_or_else(|| "evaluate: --seeds <id,id,...> is required".to_string())?,
    )?;
    if wanted.is_empty() {
        return Err("evaluate: --seeds list is empty".into());
    }
    // Map original labels back to dense ids.
    let mut seeds = Vec::with_capacity(wanted.len());
    for label in &wanted {
        let dense = loaded
            .labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| format!("seed label {label} not present in the graph"))?;
        seeds.push(dense as NodeId);
    }
    let runs: usize = args.get_parsed("runs", 10_000usize)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let (spread, stderr) = match args.get("model").unwrap_or("ic") {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        "ic" => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        other => return Err(format!("unknown --model '{other}'")),
    };
    println!(
        "E[I(S)] ≈ {spread:.2} ± {:.2} (|S| = {}, {runs} runs)",
        2.0 * stderr,
        seeds.len()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let ds = g.degree_stats();
    println!("nodes:          {}", g.n());
    println!("arcs:           {}", g.m());
    println!("avg degree:     {:.2}", ds.avg_degree);
    println!("max out-degree: {}", ds.max_out_degree);
    println!("max in-degree:  {}", ds.max_in_degree);
    println!("largest SCC:    {}", analysis::largest_scc_size(g));
    let h = analysis::in_degree_histogram(g);
    for d in [1usize, 10, 100] {
        if d <= h.max_degree() {
            println!("P(indeg >= {d}): {:.4}", h.tail_fraction(d));
        }
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.positional(0, "generator kind")?;
    let out = args
        .get("out")
        .ok_or_else(|| "generate: --out <path> is required".to_string())?;
    let n: usize = args.get_parsed("n", 10_000usize)?;
    let param: f64 = args.get_parsed("param", 4.0f64)?;
    let scale: f64 = args.get_parsed("scale", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;

    let dataset = |d: Dataset| d.build(scale, seed);
    let g = match kind {
        "ba" => tim_graph::gen::barabasi_albert(n, param.max(1.0) as usize, 0.1, seed),
        "gnm" => tim_graph::gen::erdos_renyi_gnm(n, (n as f64 * param) as usize, seed),
        "ws" => tim_graph::gen::watts_strogatz(n, param.max(1.0) as usize, 0.1, seed),
        "powerlaw" => tim_graph::gen::powerlaw_configuration(n, 2.5, param, n / 4, seed),
        "nethept" => dataset(Dataset::NetHept),
        "epinions" => dataset(Dataset::Epinions),
        "dblp" => dataset(Dataset::Dblp),
        "livejournal" => dataset(Dataset::LiveJournal),
        "twitter" => dataset(Dataset::Twitter),
        other => return Err(format!("unknown generator '{other}'")),
    };
    io::save_edge_list(&g, out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} nodes / {} arcs to {out}", g.n(), g.m());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tim_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn generate_then_stats_then_select_round_trip() {
        let dir = tmpdir();
        let path = dir.join("ba.txt");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "generate ba --out {path_s} --n 500 --param 3 --seed 1"
        )))
        .unwrap();
        assert!(path.exists());
        dispatch(&argv(&format!("stats {path_s}"))).unwrap();
        dispatch(&argv(&format!(
            "select {path_s} -k 5 --algo tim+ --eps 0.8 --seed 2 --quiet"
        )))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_requires_k() {
        let dir = tmpdir();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let path_s = path.to_str().unwrap();
        assert!(dispatch(&argv(&format!("select {path_s}"))).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_maps_labels_and_reports() {
        let dir = tmpdir();
        let path = dir.join("labels.txt");
        // Labels 100 -> 200 -> 300 with p = 1.
        std::fs::write(&path, "100 200 1.0\n200 300 1.0\n").unwrap();
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 100 --weights keep --runs 100"
        )))
        .unwrap();
        // Unknown label is an error.
        assert!(dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 999 --weights keep"
        )))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_with_each_cheap_algo_works() {
        let dir = tmpdir();
        let path = dir.join("algos.txt");
        std::fs::write(
            &path,
            (0..50u32)
                .map(|i| format!("{} {}\n", i, (i + 1) % 50))
                .collect::<String>(),
        )
        .unwrap();
        let path_s = path.to_str().unwrap();
        for algo in ["degree", "degreediscount", "pagerank", "simpath", "imm"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 3 --algo {algo} --eps 1.0 --runs 100 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        assert!(dispatch(&argv("generate blah --out /tmp/x.txt")).is_err());
    }

    #[test]
    fn weights_flag_variants_parse() {
        let dir = tmpdir();
        let path = dir.join("w.txt");
        std::fs::write(&path, "0 1 0.5\n1 2 0.5\n").unwrap();
        let path_s = path.to_str().unwrap();
        for w in ["wc", "lt", "keep", "const:0.2", "tri"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 1 --weights {w} --eps 1.0 --runs 50 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        }
        assert!(dispatch(&argv(&format!("select {path_s} -k 1 --weights bogus"))).is_err());
        std::fs::remove_file(&path).ok();
    }
}
