//! The eight subcommands: select, evaluate, stats, generate, snapshot,
//! query, serve, client.

use crate::args::{parse_id_list, Args};
use std::io::{BufRead, Write};
use std::sync::Arc;
use tim_baselines::{
    celf::CelfGreedy, degree_discount::DegreeDiscount, high_degree::HighDegree, irie::Irie,
    pagerank::PageRank, ris::Ris, simpath::SimPath, SeedSelector,
};
use tim_core::{Imm, Tim, TimPlus};
use tim_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold, SpreadEstimator};
use tim_engine::{QueryEngine, RrPool};
use tim_eval::Dataset;
use tim_graph::io::LoadedGraph;
use tim_graph::{analysis, io, snapshot, weights, Graph, NodeId};
use tim_server::{protocol, LabelMap, Server, ServerConfig, ServerState};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  tim select   <graph> -k <K> [--algo tim+|tim|imm|ris|celf|celf++|greedy|irie|simpath|degree|degreediscount|pagerank]
               [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--runs 10000] [--undirected] [--quiet]
  tim evaluate <graph> --seeds <id,id,...> [--model ic|lt] [--weights wc|lt|keep|const:<p>|tri]
               [--runs 10000] [--seed 0] [--undirected]
  tim stats    <graph> [--undirected]
  tim generate <ba|gnm|ws|powerlaw|nethept|epinions|dblp|livejournal|twitter>
               --out <path> [--n 10000] [--param 4] [--scale 1.0] [--seed 0]
  tim snapshot <graph> --out <path.timg> [--weights keep|wc|lt|const:<p>|tri] [--seed 0] [--undirected]
  tim query    <graph> [--pool <path.timp>] [-k <K=50>] [--model ic|lt] [--weights wc|...]
               [--eps 0.1] [--ell 1.0] [--seed 0] [--undirected] [--quiet]
               (reads line-delimited queries from stdin:
                  select <k> [fast] [eps=<v>] [ell=<v>]
                  eval <id,id,...>
                  marginal <id,id,...> <cand-id>
                  ping)
  tim serve    <graph> [--addr 127.0.0.1:7171] [--threads 4] [--pool-cache 4]
               [-k <K=50>] [--model ic|lt] [--weights wc|...] [--eps 0.1] [--ell 1.0]
               [--seed 0] [--pool <path.timp>] [--undirected] [--quiet]
               (serves the query protocol over TCP; prints `listening on <addr>`
                on stdout when bound — see docs/PROTOCOL.md)
  tim client   --addr <host:port>
               (pipes line-delimited queries from stdin to a running server,
                answers to stdout)

  <graph> is a SNAP-style text edge list or a binary .timg snapshot
  (auto-detected by content, not extension).";

/// Entry point: dispatches on the subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| "missing subcommand".to_string())?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "select" => select(&args),
        "evaluate" => evaluate(&args),
        "stats" => stats(&args),
        "generate" => generate(&args),
        "snapshot" => snapshot_cmd(&args),
        "query" => query(&args),
        "serve" => serve(&args),
        "client" => client(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Applies a `--weights` spec to a graph. `seed` perturbs the seeded
/// models (lt/tri) exactly as `select`/`evaluate` always have.
fn apply_weights(graph: &mut Graph, spec: &str, seed: u64) -> Result<(), String> {
    match spec {
        "wc" => weights::assign_weighted_cascade(graph),
        "lt" => weights::assign_lt_normalized(graph, seed ^ 0x17),
        "tri" => weights::assign_trivalency(graph, seed ^ 0x3),
        "keep" => {} // probabilities from the file
        other => {
            if let Some(p) = other.strip_prefix("const:") {
                let p: f32 = p
                    .parse()
                    .map_err(|_| format!("--weights const: bad probability '{p}'"))?;
                weights::assign_constant(graph, p);
            } else {
                return Err(format!("unknown --weights '{other}'"));
            }
        }
    }
    Ok(())
}

/// Loads the input graph (text or `.timg`, sniffed by content) and applies
/// the requested weight model.
fn load(args: &Args) -> Result<LoadedGraph, String> {
    let path = args.positional(0, "input graph path")?;
    let mut loaded = io::load_graph(path, args.switch("undirected"))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    apply_weights(&mut loaded.graph, args.get("weights").unwrap_or("wc"), seed)?;
    Ok(loaded)
}

#[allow(clippy::too_many_arguments)] // flat plumbing of CLI flags
fn run_selection<M: DiffusionModel + Sync + Clone>(
    algo: &str,
    model: M,
    graph: &Graph,
    k: usize,
    eps: f64,
    ell: f64,
    seed: u64,
    runs: usize,
) -> Result<(Vec<NodeId>, String), String> {
    let seeds = match algo {
        "tim+" => {
            TimPlus::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "tim" => {
            Tim::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "imm" => {
            Imm::new(model)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .run(graph, k)
                .seeds
        }
        "ris" => Ris::new(model)
            .epsilon(eps.max(0.3))
            .tau_constant(0.1)
            .seed(seed)
            .select(graph, k),
        "celf" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Celf)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "celf++" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::CelfPlusPlus)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "greedy" => CelfGreedy::new(model)
            .variant(tim_baselines::celf::CelfVariant::Plain)
            .runs(runs)
            .seed(seed)
            .select(graph, k),
        "irie" => Irie::new(model).seed(seed).select(graph, k),
        other => return Err(format!("unknown --algo '{other}'")),
    };
    Ok((seeds, algo.to_string()))
}

fn select(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let k: usize = args.get_parsed("k", 0usize)?;
    if k == 0 {
        return Err("select: -k <K> is required and must be positive".into());
    }
    let algo = args.get("algo").unwrap_or("tim+").to_lowercase();
    let model_name = args.get("model").unwrap_or("ic").to_lowercase();
    let eps: f64 = args.get_parsed("eps", 0.1f64)?;
    let ell: f64 = args.get_parsed("ell", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let runs: usize = args.get_parsed("runs", 10_000usize)?;

    // Model-independent heuristics first.
    let seeds = match algo.as_str() {
        "degree" => HighDegree.select(g, k),
        "degreediscount" => DegreeDiscount::new().select(g, k),
        "pagerank" => PageRank::new().select(g, k),
        "simpath" => SimPath::new().select(g, k),
        _ => match model_name.as_str() {
            "ic" => run_selection(&algo, IndependentCascade, g, k, eps, ell, seed, runs)?.0,
            "lt" => run_selection(&algo, LinearThreshold, g, k, eps, ell, seed, runs)?.0,
            other => return Err(format!("unknown --model '{other}'")),
        },
    };

    let labels: Vec<u64> = seeds.iter().map(|&v| loaded.label_of(v)).collect();
    if args.switch("quiet") {
        for l in &labels {
            println!("{l}");
        }
        return Ok(());
    }
    println!(
        "graph: n = {}, m = {} | algo = {algo}, model = {model_name}, k = {k}",
        g.n(),
        g.m()
    );
    println!("seeds (original labels): {labels:?}");
    let spread = match model_name.as_str() {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
        _ => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed ^ 0xE)
            .estimate(g, &seeds),
    };
    println!("estimated spread ({runs} MC runs): {spread:.1}");
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let wanted = parse_id_list(
        args.get("seeds")
            .ok_or_else(|| "evaluate: --seeds <id,id,...> is required".to_string())?,
    )?;
    if wanted.is_empty() {
        return Err("evaluate: --seeds list is empty".into());
    }
    // Map original labels back to dense ids.
    let mut seeds = Vec::with_capacity(wanted.len());
    for label in &wanted {
        let dense = loaded
            .labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| format!("seed label {label} not present in the graph"))?;
        seeds.push(dense as NodeId);
    }
    let runs: usize = args.get_parsed("runs", 10_000usize)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let (spread, stderr) = match args.get("model").unwrap_or("ic") {
        "lt" => SpreadEstimator::new(LinearThreshold)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        "ic" => SpreadEstimator::new(IndependentCascade)
            .runs(runs)
            .seed(seed)
            .estimate_with_stderr(g, &seeds),
        other => return Err(format!("unknown --model '{other}'")),
    };
    println!(
        "E[I(S)] ≈ {spread:.2} ± {:.2} (|S| = {}, {runs} runs)",
        2.0 * stderr,
        seeds.len()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    let g = &loaded.graph;
    let ds = g.degree_stats();
    println!("nodes:          {}", g.n());
    println!("arcs:           {}", g.m());
    println!("avg degree:     {:.2}", ds.avg_degree);
    println!("max out-degree: {}", ds.max_out_degree);
    println!("max in-degree:  {}", ds.max_in_degree);
    println!("largest SCC:    {}", analysis::largest_scc_size(g));
    let h = analysis::in_degree_histogram(g);
    for d in [1usize, 10, 100] {
        if d <= h.max_degree() {
            println!("P(indeg >= {d}): {:.4}", h.tail_fraction(d));
        }
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.positional(0, "generator kind")?;
    let out = args
        .get("out")
        .ok_or_else(|| "generate: --out <path> is required".to_string())?;
    let n: usize = args.get_parsed("n", 10_000usize)?;
    let param: f64 = args.get_parsed("param", 4.0f64)?;
    let scale: f64 = args.get_parsed("scale", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;

    let dataset = |d: Dataset| d.build(scale, seed);
    let g = match kind {
        "ba" => tim_graph::gen::barabasi_albert(n, param.max(1.0) as usize, 0.1, seed),
        "gnm" => tim_graph::gen::erdos_renyi_gnm(n, (n as f64 * param) as usize, seed),
        "ws" => tim_graph::gen::watts_strogatz(n, param.max(1.0) as usize, 0.1, seed),
        "powerlaw" => tim_graph::gen::powerlaw_configuration(n, 2.5, param, n / 4, seed),
        "nethept" => dataset(Dataset::NetHept),
        "epinions" => dataset(Dataset::Epinions),
        "dblp" => dataset(Dataset::Dblp),
        "livejournal" => dataset(Dataset::LiveJournal),
        "twitter" => dataset(Dataset::Twitter),
        other => return Err(format!("unknown generator '{other}'")),
    };
    io::save_edge_list(&g, out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} nodes / {} arcs to {out}", g.n(), g.m());
    Ok(())
}

fn snapshot_cmd(args: &Args) -> Result<(), String> {
    let path = args.positional(0, "input graph path")?;
    let out = args
        .get("out")
        .ok_or_else(|| "snapshot: --out <path.timg> is required".to_string())?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;

    let t0 = std::time::Instant::now();
    let mut loaded = io::load_graph(path, args.switch("undirected"))
        .map_err(|e| format!("loading {path}: {e}"))?;
    let parse_time = t0.elapsed();
    // Default "keep": snapshots preserve the source probabilities so that
    // `select --weights wc` behaves identically on text and snapshot
    // input. Pass --weights explicitly to bake a model in (then query
    // with --weights keep).
    apply_weights(
        &mut loaded.graph,
        args.get("weights").unwrap_or("keep"),
        seed,
    )?;

    snapshot::save_snapshot(&loaded.graph, &loaded.labels, out)
        .map_err(|e| format!("writing {out}: {e}"))?;

    // Reload to verify the round trip and measure the binary path.
    let t1 = std::time::Instant::now();
    let reloaded = snapshot::load_snapshot(out).map_err(|e| format!("verifying {out}: {e}"))?;
    let load_time = t1.elapsed();
    if snapshot::graph_checksum(&reloaded.graph) != snapshot::graph_checksum(&loaded.graph)
        || reloaded.labels != loaded.labels
    {
        return Err(format!("round-trip verification failed for {out}"));
    }

    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: {} nodes / {} arcs ({bytes} bytes)",
        reloaded.graph.n(),
        reloaded.graph.m()
    );
    let ratio = parse_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9);
    println!("source load: {parse_time:.2?}; snapshot load: {load_time:.2?} ({ratio:.1}x)");
    Ok(())
}

/// Checks that an explicitly passed flag agrees with the value a loaded
/// pool was built with (pools pin their configuration; silently ignoring
/// a contradicting flag would be worse than an error).
fn check_pool_flag<T: PartialEq + std::fmt::Display>(
    flag: &str,
    given: Option<T>,
    pool_value: T,
) -> Result<(), String> {
    match given {
        Some(v) if v != pool_value => Err(format!(
            "--{flag} {v} contradicts the pool (built with {flag} = {pool_value}); \
             drop the flag or delete the pool file to rebuild"
        )),
        _ => Ok(()),
    }
}

fn query(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    match args.get("model").unwrap_or("ic").to_lowercase().as_str() {
        "ic" => query_with(IndependentCascade, "ic", loaded, args),
        "lt" => query_with(LinearThreshold, "lt", loaded, args),
        other => Err(format!("unknown --model '{other}'")),
    }
}

fn query_with<M: DiffusionModel + Sync + Clone>(
    model: M,
    model_name: &str,
    loaded: LoadedGraph,
    args: &Args,
) -> Result<(), String> {
    let k_max: usize = args.get_parsed("k", 50usize)?;
    let eps: f64 = args.get_parsed("eps", 0.1f64)?;
    let ell: f64 = args.get_parsed("ell", 1.0f64)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let quiet = args.switch("quiet");
    let pool_path = args.get("pool");
    let LoadedGraph { graph, labels } = loaded;

    let mut engine = match pool_path {
        Some(p) if std::path::Path::new(p).exists() => {
            let pool = RrPool::load(p).map_err(|e| format!("loading pool {p}: {e}"))?;
            check_pool_flag("eps", args.get("eps").map(|_| eps), pool.meta.epsilon)?;
            check_pool_flag("ell", args.get("ell").map(|_| ell), pool.meta.ell)?;
            check_pool_flag("seed", args.get("seed").map(|_| seed), pool.meta.seed)?;
            check_pool_flag("k", args.get("k").map(|_| k_max), pool.meta.k_max as usize)?;
            let engine = QueryEngine::from_pool(graph, model, model_name, pool)
                .map_err(|e| format!("attaching pool {p}: {e} (delete the file to rebuild)"))?;
            if !quiet {
                eprintln!(
                    "loaded pool {p}: theta = {}, warmed for k <= {}",
                    engine.pool_theta(),
                    engine.warmed_k()
                );
            }
            engine
        }
        _ => {
            let mut engine = QueryEngine::new(graph, model, model_name)
                .epsilon(eps)
                .ell(ell)
                .seed(seed)
                .k_max(k_max);
            let t0 = std::time::Instant::now();
            engine.warm();
            if !quiet {
                eprintln!(
                    "warmed pool: theta = {} in {:.2?} (k <= {k_max}, eps = {eps}, ell = {ell})",
                    engine.pool_theta(),
                    t0.elapsed()
                );
            }
            if let Some(p) = pool_path {
                engine
                    .to_pool()
                    .save(p)
                    .map_err(|e| format!("saving pool {p}: {e}"))?;
                if !quiet {
                    eprintln!("saved pool to {p}");
                }
            }
            engine
        }
    };

    let theta_before = engine.pool_theta();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    query_session(&mut engine, &labels, stdin.lock(), &mut stdout, quiet)?;

    // Persist growth so the next process benefits from it.
    if let Some(p) = pool_path {
        if engine.pool_theta() != theta_before {
            engine
                .to_pool()
                .save(p)
                .map_err(|e| format!("re-saving pool {p}: {e}"))?;
            if !quiet {
                eprintln!("pool grew to theta = {}; re-saved {p}", engine.pool_theta());
            }
        }
    }
    Ok(())
}

/// Runs the line-delimited query protocol: one answer line on `out` per
/// input line. Malformed queries produce an `error: …` line and the
/// session continues — batch workloads should not die on one bad line.
///
/// Delegates every line to [`tim_server::protocol`] — the same code that
/// serves `tim serve` connections, so the two front ends cannot drift.
fn query_session<M: DiffusionModel + Sync + Clone>(
    engine: &mut QueryEngine<M>,
    labels: &[u64],
    input: impl BufRead,
    out: &mut impl Write,
    quiet: bool,
) -> Result<(), String> {
    let map = LabelMap::new(labels.to_vec());
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading queries: {e}"))?;
        let Some(reply) = protocol::handle_line(engine, &map, &line) else {
            continue; // blank line or comment
        };
        if !quiet {
            if let Some(note) = &reply.note {
                eprintln!("{note}");
            }
        }
        writeln!(out, "{}", reply.line).map_err(|e| format!("writing answer: {e}"))?;
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    let loaded = load(args)?;
    match args.get("model").unwrap_or("ic").to_lowercase().as_str() {
        "ic" => serve_with(IndependentCascade, "ic", loaded, args),
        "lt" => serve_with(LinearThreshold, "lt", loaded, args),
        other => Err(format!("unknown --model '{other}'")),
    }
}

fn serve_with<M: DiffusionModel + Send + Sync + Clone + 'static>(
    model: M,
    model_name: &str,
    loaded: LoadedGraph,
    args: &Args,
) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7171");
    let quiet = args.switch("quiet");
    let config = ServerConfig {
        threads: args.get_parsed("threads", 4usize)?,
        pool_cache: args.get_parsed("pool-cache", 4usize)?,
        epsilon: args.get_parsed("eps", 0.1f64)?,
        ell: args.get_parsed("ell", 1.0f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        k_max: args.get_parsed("k", 50usize)?,
        sample_threads: 0,
        verbose: !quiet,
    };
    if config.threads == 0 {
        return Err("serve: --threads must be positive".into());
    }
    if config.pool_cache == 0 {
        return Err("serve: --pool-cache must be positive".into());
    }
    let LoadedGraph { graph, labels } = loaded;
    let graph = Arc::new(graph);
    let state = Arc::new(ServerState::new(
        Arc::clone(&graph),
        LabelMap::new(labels),
        model.clone(),
        model_name,
        config.clone(),
    ));

    // Pre-seed the pool cache from a persisted `.timp` pool (keyed by the
    // pool's own provenance, which need not match the serving defaults).
    // This happens *before* the listening line is printed: a missing or
    // corrupt pool must fail here, not after scripts have already parsed
    // the address and assumed the server is up.
    if let Some(p) = args.get("pool") {
        if !std::path::Path::new(p).exists() {
            return Err(format!("serve: pool file {p} does not exist"));
        }
        let pool = RrPool::load(p).map_err(|e| format!("loading pool {p}: {e}"))?;
        let engine = QueryEngine::from_pool(Arc::clone(&graph), model, model_name, pool)
            .map_err(|e| format!("attaching pool {p}: {e}"))?;
        let shared = state.preload(engine);
        if !quiet {
            eprintln!(
                "preloaded pool {p}: theta = {}, warmed for k <= {}",
                shared.pool_theta(),
                shared.warmed_k()
            );
        }
    }

    // Bind before the (possibly long) default-pool warm-up: the address
    // is known immediately, and connections queue in the listen backlog
    // until the workers start.
    let server =
        Server::bind(Arc::clone(&state), addr).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flushing stdout: {e}"))?;

    let t0 = std::time::Instant::now();
    let theta = state.warm_default();
    if !quiet {
        eprintln!(
            "default pool ready: theta = {theta} in {:.2?} (k <= {}, eps = {}, ell = {}, seed = {})",
            t0.elapsed(),
            config.k_max,
            config.epsilon,
            config.ell,
            config.seed
        );
        eprintln!(
            "serving with {} workers, pool cache capacity {}",
            config.threads, config.pool_cache
        );
    }
    server.start().wait();
    Ok(())
}

fn client(args: &Args) -> Result<(), String> {
    let addr = args
        .get("addr")
        .ok_or_else(|| "client: --addr <host:port> is required".to_string())?;
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cloning connection: {e}"))?;

    // Uploader thread: stdin → server, then half-close so the server sees
    // EOF once our queries are sent; responses keep flowing back.
    let upload = std::thread::spawn(move || -> Result<(), String> {
        let stdin = std::io::stdin();
        std::io::copy(&mut stdin.lock(), &mut writer)
            .map_err(|e| format!("sending queries: {e}"))?;
        writer
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("closing send side: {e}"))?;
        Ok(())
    });

    let mut out = std::io::stdout();
    let copy = std::io::copy(&mut std::io::BufReader::new(stream), &mut out)
        .map_err(|e| format!("reading answers: {e}"));
    let upload = upload.join().map_err(|_| "uploader panicked".to_string())?;
    copy?;
    upload
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tim_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn generate_then_stats_then_select_round_trip() {
        let dir = tmpdir();
        let path = dir.join("ba.txt");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "generate ba --out {path_s} --n 500 --param 3 --seed 1"
        )))
        .unwrap();
        assert!(path.exists());
        dispatch(&argv(&format!("stats {path_s}"))).unwrap();
        dispatch(&argv(&format!(
            "select {path_s} -k 5 --algo tim+ --eps 0.8 --seed 2 --quiet"
        )))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_requires_k() {
        let dir = tmpdir();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let path_s = path.to_str().unwrap();
        assert!(dispatch(&argv(&format!("select {path_s}"))).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_maps_labels_and_reports() {
        let dir = tmpdir();
        let path = dir.join("labels.txt");
        // Labels 100 -> 200 -> 300 with p = 1.
        std::fs::write(&path, "100 200 1.0\n200 300 1.0\n").unwrap();
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 100 --weights keep --runs 100"
        )))
        .unwrap();
        // Unknown label is an error.
        assert!(dispatch(&argv(&format!(
            "evaluate {path_s} --seeds 999 --weights keep"
        )))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn select_with_each_cheap_algo_works() {
        let dir = tmpdir();
        let path = dir.join("algos.txt");
        std::fs::write(
            &path,
            (0..50u32)
                .map(|i| format!("{} {}\n", i, (i + 1) % 50))
                .collect::<String>(),
        )
        .unwrap();
        let path_s = path.to_str().unwrap();
        for algo in ["degree", "degreediscount", "pagerank", "simpath", "imm"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 3 --algo {algo} --eps 1.0 --runs 100 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        assert!(dispatch(&argv("generate blah --out /tmp/x.txt")).is_err());
    }

    #[test]
    fn snapshot_round_trip_preserves_select_output() {
        let dir = tmpdir();
        let text = dir.join("snap_src.txt");
        let timg = dir.join("snap_src.timg");
        // Sparse labels exercise the label map through the snapshot.
        std::fs::write(
            &text,
            (0..60u32)
                .map(|i| format!("{} {}\n", i * 10 + 5, ((i + 1) % 60) * 10 + 5))
                .collect::<String>(),
        )
        .unwrap();
        let (text_s, timg_s) = (text.to_str().unwrap(), timg.to_str().unwrap());
        dispatch(&argv(&format!("snapshot {text_s} --out {timg_s}"))).unwrap();
        // `select` on the snapshot goes through the same pipeline (weights
        // re-applied over preserved probabilities) => identical seeds.
        let run = |path: &str| {
            let loaded = io::load_graph(path, false).unwrap();
            let mut g = loaded.graph;
            weights::assign_weighted_cascade(&mut g);
            let r = TimPlus::new(IndependentCascade)
                .epsilon(1.0)
                .seed(3)
                .run(&g, 4);
            r.seeds
                .iter()
                .map(|&v| loaded.labels[v as usize])
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(text_s), run(timg_s));
        // stats and select accept the snapshot transparently.
        dispatch(&argv(&format!("stats {timg_s}"))).unwrap();
        dispatch(&argv(&format!(
            "select {timg_s} -k 2 --eps 1.0 --seed 1 --quiet"
        )))
        .unwrap();
        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&timg).ok();
    }

    #[test]
    fn snapshot_requires_out_flag() {
        let dir = tmpdir();
        let path = dir.join("no_out.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        assert!(dispatch(&argv(&format!("snapshot {}", path.display()))).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_session_answers_match_fresh_select() {
        // Sparse labels so the label round trip is exercised.
        let n = 120u64;
        let edges: String = (0..n)
            .flat_map(|i| {
                [
                    format!("{} {}\n", i * 7, ((i + 1) % n) * 7),
                    format!("{} {}\n", i * 7, ((i + 5) % n) * 7),
                ]
            })
            .collect();
        let loaded = io::read_edge_list(edges.as_bytes(), false).unwrap();
        let mut g = loaded.graph;
        weights::assign_weighted_cascade(&mut g);

        let fresh = TimPlus::new(IndependentCascade)
            .epsilon(0.9)
            .seed(11)
            .run(&g, 5);
        let want: Vec<String> = fresh
            .seeds
            .iter()
            .map(|&v| loaded.labels[v as usize].to_string())
            .collect();

        let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(0.9)
            .seed(11)
            .k_max(8);
        engine.warm();
        let input = format!(
            "# comment\n\nselect 5\nselect 3 fast\neval {}\nmarginal {} {}\nbogus\nselect 0\n",
            want.join(","),
            want[0],
            want[1]
        );
        let mut out = Vec::new();
        query_session(
            &mut engine,
            &loaded.labels,
            input.as_bytes(),
            &mut out,
            true,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], format!("seeds: {}", want.join(" ")));
        assert!(lines[1].starts_with("seeds: "));
        assert_eq!(lines[1].split_whitespace().count(), 4); // "seeds:" + 3
        assert!(lines[2].starts_with("spread: "));
        assert!(lines[3].starts_with("marginal: "));
        assert!(lines[4].starts_with("error: unknown query"));
        assert!(lines[5].starts_with("error: select"));
    }

    #[test]
    fn query_session_reports_unknown_labels() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let mut g = loaded.graph;
        weights::assign_constant(&mut g, 0.5);
        let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(1.0)
            .k_max(2);
        engine.warm();
        let mut out = Vec::new();
        query_session(
            &mut engine,
            &loaded.labels,
            "eval 999\n".as_bytes(),
            &mut out,
            true,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("label 999"));
    }

    #[test]
    fn serve_rejects_bad_flags_fast() {
        let dir = tmpdir();
        let path = dir.join("srv.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let path_s = path.to_str().unwrap();
        // Bind happens before any pool warm-up, so these fail quickly.
        assert!(dispatch(&argv(&format!("serve {path_s} --addr not-an-addr"))).is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --threads 0"
        )))
        .is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --pool-cache 0"
        )))
        .is_err());
        assert!(dispatch(&argv(&format!(
            "serve {path_s} --addr 127.0.0.1:0 --pool /nonexistent.timp"
        )))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn client_requires_addr_and_reports_connect_failure() {
        assert!(dispatch(&argv("client")).is_err());
        // A port nothing listens on: connect must error out, not hang.
        assert!(dispatch(&argv("client --addr 127.0.0.1:1")).is_err());
    }

    #[test]
    fn query_session_answers_ping() {
        let loaded = io::read_edge_list("0 1\n1 2\n2 0\n".as_bytes(), false).unwrap();
        let mut g = loaded.graph;
        weights::assign_constant(&mut g, 0.5);
        let mut engine = QueryEngine::new(g, IndependentCascade, "ic")
            .epsilon(1.0)
            .k_max(2);
        let mut out = Vec::new();
        query_session(
            &mut engine,
            &loaded.labels,
            "ping\n".as_bytes(),
            &mut out,
            true,
        )
        .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "pong tim/1\n");
    }

    #[test]
    fn pool_flag_contradiction_is_caught() {
        assert!(check_pool_flag("eps", Some(0.2), 0.1).is_err());
        assert!(check_pool_flag("eps", Some(0.1), 0.1).is_ok());
        assert!(check_pool_flag::<f64>("eps", None, 0.1).is_ok());
    }

    #[test]
    fn weights_flag_variants_parse() {
        let dir = tmpdir();
        let path = dir.join("w.txt");
        std::fs::write(&path, "0 1 0.5\n1 2 0.5\n").unwrap();
        let path_s = path.to_str().unwrap();
        for w in ["wc", "lt", "keep", "const:0.2", "tri"] {
            dispatch(&argv(&format!(
                "select {path_s} -k 1 --weights {w} --eps 1.0 --runs 50 --quiet"
            )))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        }
        assert!(dispatch(&argv(&format!("select {path_s} -k 1 --weights bogus"))).is_err());
        std::fs::remove_file(&path).ok();
    }
}
