//! `tim` — command-line influence maximization.
//!
//! ```text
//! tim select   <edges.txt> -k 50 [--algo tim+] [--model ic] [--weights wc]
//!              [--eps 0.1] [--ell 1.0] [--seed 0] [--undirected]
//! tim evaluate <edges.txt> --seeds 3,17,42 [--model ic] [--weights wc]
//!              [--runs 10000] [--seed 0] [--undirected]
//! tim stats    <edges.txt> [--undirected]
//! tim generate <ba|gnm|ws|powerlaw|nethept|epinions|dblp|livejournal|twitter>
//!              --out <path> [--n 10000] [--param 4] [--scale 1.0] [--seed 0]
//! ```
//!
//! Edge lists are SNAP-style text (`src dst [prob]`, `#` comments). Node
//! labels may be arbitrary integers; seeds are printed in original labels.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    }
}
