//! `tim` — command-line influence maximization.
//!
//! ```text
//! tim select   <graph> -k 50 [--algo tim+] [--model ic] [--weights wc]
//!              [--eps 0.1] [--ell 1.0] [--seed 0] [--undirected]
//! tim evaluate <graph> --seeds 3,17,42 [--model ic] [--weights wc]
//!              [--runs 10000] [--seed 0] [--undirected]
//! tim stats    <graph> [--undirected]
//! tim generate <ba|gnm|ws|powerlaw|nethept|epinions|dblp|livejournal|twitter>
//!              --out <path> [--n 10000] [--param 4] [--scale 1.0] [--seed 0]
//! tim snapshot <graph> --out <path.timg> [--weights keep] [--undirected]
//! tim query    [<graph>] [--graph name=path[::k=v,...]]... [--graphs <dir>]
//!              [--pool <path.timp>] [--pool-dir <dir>] [--persist-pools]
//!              [--admin] [-k 50] [--model ic]
//!              [--eps 0.1] [--ell 1.0] [--seed 0] [--quiet]
//! tim serve    [<graph>] [--graph name=path[::k=v,...]]... [--graphs <dir>]
//!              [--addr 127.0.0.1:7171] [--threads 4] [--pool-cache 4]
//!              [-k 50] [--model ic] [--eps 0.1] [--seed 0] [--pool <path.timp>]
//!              [--pool-dir <dir>] [--persist-pools] [--admin]
//!              [--default-graph <name>] [--max-loaded 8]
//! tim client   --addr <host:port> [--timeout <secs>]
//! ```
//!
//! `<graph>` is either SNAP-style text (`src dst [prob]`, `#` comments) or
//! a binary `.timg` snapshot (`tim snapshot`), auto-detected by content.
//! Node labels may be arbitrary integers; seeds are printed in original
//! labels.
//!
//! `tim query` keeps an RR-set pool warm (optionally persisted as a
//! `.timp` file) and answers line-delimited `tim/3` queries from stdin
//! (`select` / `eval` / `marginal` / `use` / `graphs` / `stats` /
//! `batch` / `ping`, plus the `--admin`-gated `attach` / `detach` /
//! `persist` / `stats pools`) — `select` answers are byte-identical to a
//! fresh `tim select --algo tim+` at the same `(seed, eps, ell, k)`.
//!
//! `tim serve` answers the same protocol over TCP from multiple worker
//! threads. One process hosts a catalog of named graphs (positional
//! graph = `default`, plus `--graph`/`--graphs` entries, loaded lazily
//! with LRU eviction beyond `--max-loaded`), each with its own
//! provenance-keyed LRU pool cache; `--graph` specs take per-graph
//! `model`/`eps`/`ell`/`seed`/`k`/`weights` overrides after `::`.
//! Sessions switch graphs with `use` and batch requests with
//! `batch <n>`. With `--pool-dir <dir>` each graph keeps its pools in a
//! persistent per-tenant store under `<dir>/<name>/`, so a restart (or a
//! newly attached tenant with existing state) loads its warm pools from
//! disk instead of resampling; `--persist-pools` writes newly built or
//! grown pools back automatically. `tim client` pipes a scripted stdin
//! session to a running server, exits nonzero if any response is
//! `error: …`, and bounds connects/reads with `--timeout` instead of
//! hanging on a dead server. The protocol spec is `docs/PROTOCOL.md`.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    }
}
