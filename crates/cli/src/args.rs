//! Tiny flag parser shared by the subcommands (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: positionals plus `--flag value` / `--flag` pairs.
/// Flags may repeat (`--graph a=x --graph b=y`); [`Args::get`] returns the
/// last occurrence, [`Args::get_all`] every occurrence in order.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "undirected",
    "quiet",
    "admin",
    "persist-pools",
    "event-loop",
    "mmap",
    "mmap-pools",
];

impl Args {
    /// Parses argv (without the subcommand name).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    args.flags
                        .entry(name.to_string())
                        .or_default()
                        .push(value.clone());
                }
            } else if let Some(name) = a.strip_prefix('-') {
                // Short flags: -k 50 style.
                let value = it
                    .next()
                    .ok_or_else(|| format!("-{name} requires a value"))?;
                args.flags
                    .entry(name.to_string())
                    .or_default()
                    .push(value.clone());
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// True when the boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// String flag value (the last occurrence when repeated).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.flags.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parsed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }

    /// Required positional argument.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

// The id-list grammar is owned by the wire protocol (`--seeds` uses the
// same `id,id,...` form as protocol queries); re-export the single
// implementation rather than keeping a drift-prone copy here.
pub use tim_server::protocol::parse_id_list;

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_positionals_flags_and_switches() {
        let a = Args::parse(&argv("edges.txt -k 50 --eps 0.2 --undirected")).unwrap();
        assert_eq!(a.positional, vec!["edges.txt"]);
        assert_eq!(a.get("k"), Some("50"));
        assert_eq!(a.get_parsed("eps", 0.1).unwrap(), 0.2);
        assert!(a.switch("undirected"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn repeated_flags_keep_every_occurrence() {
        let a = Args::parse(&argv("--graph a=x --graph b=y --eps 0.1 --eps 0.2")).unwrap();
        assert_eq!(a.get_all("graph"), ["a=x".to_string(), "b=y".to_string()]);
        assert_eq!(a.get("graph"), Some("b=y"), "get returns the last");
        assert_eq!(a.get_parsed("eps", 0.0).unwrap(), 0.2);
        assert!(a.get_all("nope").is_empty());
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let a = Args::parse(&argv("x")).unwrap();
        assert_eq!(a.get_parsed("runs", 10_000usize).unwrap(), 10_000);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("x --eps")).is_err());
        assert!(Args::parse(&argv("x -k")).is_err());
    }

    #[test]
    fn bad_parse_is_reported() {
        let a = Args::parse(&argv("x --eps abc")).unwrap();
        assert!(a.get_parsed("eps", 0.1f64).is_err());
    }

    #[test]
    fn missing_positional_is_reported() {
        let a = Args::parse(&argv("--eps 0.1")).unwrap();
        assert!(a.positional(0, "input file").is_err());
    }

    #[test]
    fn id_list_parses_and_rejects() {
        assert_eq!(parse_id_list("1,2, 3").unwrap(), vec![1, 2, 3]);
        assert!(parse_id_list("1,x").is_err());
        assert_eq!(parse_id_list("").unwrap(), Vec::<u64>::new());
    }
}
