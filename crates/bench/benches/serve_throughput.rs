//! Serving throughput: warm-pool `tim serve` vs per-request cold runs.
//!
//! Every iteration pushes `QUERIES_PER_ITER` exact-replay `select`
//! queries end-to-end — TCP connect, newline-framed requests, newline
//! framed answers — against a running server with 1, 4, or 8 worker
//! threads, split evenly across that many concurrent client connections.
//! The baseline answers the same queries the way a pool-less deployment
//! would: a fresh `QueryEngine` per request (plan + full RR sampling +
//! greedy, no pool reuse, no TCP).
//!
//! Reported times are **per iteration**, i.e. per `QUERIES_PER_ITER`
//! queries, for every entry — so entries are directly comparable and
//! `cold/per_request ÷ warm/threads_4` is the pool-amortization speedup
//! the ROADMAP's serving story rests on (≥5× is the acceptance bar; ~9.6×
//! measured on the 1-core CI container: 27.7 ms vs 265.9 ms per 32
//! queries). The thread sweep shows wall-clock scaling only on multi-core
//! hardware — on one core the worker threads time-slice, and the warm
//! entries stay flat by design (the speedup is pool amortization, not
//! parallelism).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use tim_diffusion::IndependentCascade;
use tim_engine::QueryEngine;
use tim_graph::{gen, weights, Graph};
use tim_server::{LabelMap, Server, ServerConfig, ServerState};

/// Queries per benchmark iteration, across all clients.
const QUERIES_PER_ITER: usize = 32;

fn bench_graph() -> Graph {
    let mut g = gen::barabasi_albert(1_000, 4, 0.1, 1);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn config(threads: usize) -> ServerConfig {
    ServerConfig {
        threads,
        pool_cache: 2,
        epsilon: 0.5,
        ell: 1.0,
        seed: 7,
        k_max: 10,
        sample_threads: 0,
        ..ServerConfig::default()
    }
}

/// One client connection issuing `count` selects (k cycling 1..=10) and
/// draining the answers.
fn run_client(addr: SocketAddr, count: usize) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for i in 0..count {
        writeln!(stream, "select {}", i % 10 + 1).expect("send");
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.unwrap().len())
        .sum()
}

fn serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    for threads in [1usize, 4, 8] {
        let state = Arc::new(ServerState::new(
            bench_graph(),
            LabelMap::identity(1_000),
            IndependentCascade,
            "ic",
            config(threads),
        ));
        state.warm_default(); // pay sampling before timing
        let handle = Server::bind(Arc::clone(&state), "127.0.0.1:0")
            .expect("bind")
            .start();
        let addr = handle.addr();
        let per_client = QUERIES_PER_ITER / threads;

        group.bench_function(format!("warm/threads_{threads}"), |b| {
            b.iter(|| {
                let clients: Vec<_> = (0..threads)
                    .map(|_| std::thread::spawn(move || run_client(addr, per_client)))
                    .collect();
                let bytes: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
                black_box(bytes)
            });
        });
        handle.stop();
    }

    // Baseline: no pool reuse — every request samples from scratch (the
    // cost `tim select --algo tim+` pays per invocation). Same query mix,
    // same per-iteration query count; in-process, so the comparison even
    // spots the baseline the TCP round-trip cost.
    let graph = Arc::new(bench_graph());
    let cfg = config(1);
    group.bench_function("cold/per_request", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..QUERIES_PER_ITER {
                let mut engine = QueryEngine::new(Arc::clone(&graph), IndependentCascade, "ic")
                    .epsilon(cfg.epsilon)
                    .ell(cfg.ell)
                    .seed(cfg.seed)
                    .k_max(cfg.k_max);
                total += engine.select(i % 10 + 1).seeds.len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = serve_throughput
);
criterion_main!(benches);
