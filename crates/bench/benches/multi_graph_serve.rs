//! Multi-graph serving: batched vs unbatched sessions, and 1-graph vs
//! 3-graph catalogs.
//!
//! Every iteration runs one scripted TCP session end-to-end against a
//! running `tim/2` server whose pools are pre-warmed (sampling cost is
//! paid before timing, as in `serve_throughput`). Graphs match the
//! kick-tires shape (BA, `m = 4`, weighted cascade) at 2000 nodes.
//!
//! - `batch/{unbatched,batched}_64q` — the same 64 default-pool queries
//!   sent line-at-a-time vs as one `batch 64` unit, in two flavors: exact
//!   replay (`select k`, greedy dominates, batching ~neutral) and prefix
//!   answering (`select k fast`, µs-cheap per query, where the one
//!   pool-lock acquisition + one flush per batch actually show). The
//!   responses are byte-identical by contract either way.
//! - `catalog/graphs_{1,3}` — a session of 48 queries against a 1-graph
//!   catalog vs the same 48 spread round-robin over 3 graphs via `use`,
//!   measuring the cost of multi-tenant routing (per-graph pool caches,
//!   catalog lookups) relative to single-graph serving.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, weights};
use tim_server::{GraphCatalog, LabelMap, Server, ServerConfig, ServerHandle, ServerState};

fn config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        pool_cache: 2,
        epsilon: 0.5,
        ell: 1.0,
        seed: 7,
        k_max: 10,
        sample_threads: 0,
        ..ServerConfig::default()
    }
}

/// A warmed server over `graphs` kick-tires-shaped BA graphs.
fn start_server(graphs: usize) -> (Arc<ServerState<IndependentCascade>>, ServerHandle) {
    let catalog = GraphCatalog::new(IndependentCascade, "ic", config());
    for i in 0..graphs {
        let mut g = gen::barabasi_albert(2_000, 4, 0.1, i as u64 + 1);
        weights::assign_weighted_cascade(&mut g);
        let n = g.n();
        catalog
            .add_resident(format!("g{i}"), g, LabelMap::identity(n))
            .expect("unique bench graph names");
    }
    let state = Arc::new(ServerState::from_catalog(catalog, "g0").expect("g0 registered"));
    // Pay every graph's sampling cost before timing.
    for i in 0..graphs {
        state
            .catalog()
            .get(&format!("g{i}"))
            .expect("bench graph loads")
            .warm_default();
    }
    let handle = Server::bind(Arc::clone(&state), "127.0.0.1:0")
        .expect("bind")
        .start();
    (state, handle)
}

/// Runs one scripted session and returns the total response bytes.
fn run_session(addr: SocketAddr, lines: &[String]) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut payload = String::new();
    for l in lines {
        payload.push_str(l);
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("response line").len())
        .sum()
}

/// `count` warm default-pool queries (k cycling 1..=10), exact replay or
/// prefix answering.
fn query_lines(count: usize, fast: bool) -> Vec<String> {
    let suffix = if fast { " fast" } else { "" };
    (0..count)
        .map(|i| format!("select {}{suffix}", i % 10 + 1))
        .collect()
}

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);

    let (_state, handle) = start_server(1);
    let addr = handle.addr();
    for (tag, fast) in [("exact", false), ("fast", true)] {
        let queries = query_lines(64, fast);
        run_session(addr, &queries); // warm plans/covers outside timing
        group.bench_function(format!("unbatched_64q_{tag}"), |b| {
            b.iter(|| black_box(run_session(addr, &queries)));
        });
        let mut batched = vec![format!("batch {}", queries.len())];
        batched.extend(queries.iter().cloned());
        group.bench_function(format!("batched_64q_{tag}"), |b| {
            b.iter(|| black_box(run_session(addr, &batched)));
        });
    }
    handle.stop();
    group.finish();
}

fn bench_catalog_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog");
    group.sample_size(10);

    for graphs in [1usize, 3] {
        let (_state, handle) = start_server(graphs);
        let addr = handle.addr();
        // 48 queries round-robin across the catalog: every 16th line
        // switches graphs in the 3-graph case (the `use` answers add
        // `graphs` lines to the stream; routing is what is measured).
        let mut lines = Vec::new();
        for g in 0..graphs {
            lines.push(format!("use g{g}"));
            lines.extend(query_lines(48 / graphs, false));
        }
        run_session(addr, &lines); // warm plans/covers outside timing
        group.bench_function(format!("graphs_{graphs}"), |b| {
            b.iter(|| black_box(run_session(addr, &lines)));
        });
        handle.stop();
    }
    group.finish();
}

criterion_group!(benches, bench_batching, bench_catalog_size);
criterion_main!(benches);
