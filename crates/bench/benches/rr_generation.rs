//! RR-set generation throughput — the primitive whose cost is `EPT` and
//! which dominates every phase of TIM (θ · EPT, Equation 6).
//!
//! Ablations:
//! - IC vs LT sampling (the §7.2 observation: IC consumes one random draw
//!   per in-edge, LT one per node, so LT wins on edge-heavy graphs);
//! - serial vs sharded-parallel bulk generation (our §8-future-work
//!   extension; on a single-core machine the parallel path measures the
//!   sharding overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tim_bench::{prepare, Model};
use tim_core::parallel::generate_rr_sets;
use tim_diffusion::{IndependentCascade, LinearThreshold, RrSampler};
use tim_eval::Dataset;
use tim_rng::Rng;

fn single_set_sampling(c: &mut Criterion) {
    let g_ic = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let g_lt = prepare(Dataset::NetHept, Some(0.2), Model::Lt);
    let mut group = c.benchmark_group("rr_single");
    group.throughput(Throughput::Elements(1));

    group.bench_function("ic", |b| {
        let mut sampler = RrSampler::new(IndependentCascade);
        let mut rng = Rng::seed_from_u64(1);
        let mut buf = Vec::new();
        b.iter(|| {
            let (root, stats) = sampler.sample_random(&g_ic, &mut rng, &mut buf);
            black_box((root, stats.width));
        });
    });
    group.bench_function("lt", |b| {
        let mut sampler = RrSampler::new(LinearThreshold);
        let mut rng = Rng::seed_from_u64(1);
        let mut buf = Vec::new();
        b.iter(|| {
            let (root, stats) = sampler.sample_random(&g_lt, &mut rng, &mut buf);
            black_box((root, stats.width));
        });
    });
    group.finish();
}

fn bulk_generation(c: &mut Criterion) {
    let g = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let mut group = c.benchmark_group("rr_bulk_10k");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let (c, stats) = generate_rr_sets(&g, &IndependentCascade, 10_000, 7, threads);
                    black_box((c.len(), stats.total_width));
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = single_set_sampling, bulk_generation
}
criterion_main!(benches);
