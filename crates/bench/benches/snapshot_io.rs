//! Graph loading: text edge-list parsing vs binary `.timg` snapshots.
//!
//! The snapshot loader skips line parsing, label interning, and CSR
//! reconstruction — it is the cold-start path a serving process takes
//! before attaching an RR-set pool, so its constant matters for the
//! ROADMAP's query-engine story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tim_graph::{gen, io, snapshot, weights};

fn graph_loading(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_load");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let mut g = gen::barabasi_albert(n, 8, 0.1, 1);
        weights::assign_weighted_cascade(&mut g);
        group.throughput(Throughput::Elements(g.m() as u64));

        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        let labels: Vec<u64> = (0..g.n() as u64).collect();
        let mut snap = Vec::new();
        snapshot::write_snapshot(&g, &labels, &mut snap).unwrap();

        group.bench_with_input(BenchmarkId::new("text", n), &text, |b, text| {
            b.iter(|| {
                let loaded = io::read_edge_list(text.as_slice(), false).unwrap();
                black_box(loaded.graph.m());
            });
        });
        group.bench_with_input(BenchmarkId::new("snapshot", n), &snap, |b, snap| {
            b.iter(|| {
                let loaded = snapshot::read_snapshot(snap.as_slice()).unwrap();
                black_box(loaded.graph.m());
            });
        });
    }
    group.finish();
}

fn checksum(c: &mut Criterion) {
    let mut g = gen::barabasi_albert(50_000, 8, 0.1, 2);
    weights::assign_weighted_cascade(&mut g);
    let mut group = c.benchmark_group("graph_checksum");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("fnv1a", |b| {
        b.iter(|| black_box(snapshot::graph_checksum(&g)));
    });
    group.finish();
}

criterion_group!(benches, graph_loading, checksum);
criterion_main!(benches);
