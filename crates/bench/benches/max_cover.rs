//! Greedy max-coverage ablation (DESIGN.md decision 3): lazy-heap vs
//! bucket-queue selection over a realistic RR-set collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tim_bench::{prepare, Model};
use tim_core::parallel::generate_rr_sets;
use tim_coverage::{greedy_max_cover, greedy_max_cover_bucket, SetCollection};
use tim_diffusion::IndependentCascade;
use tim_eval::Dataset;

fn build_collection() -> SetCollection {
    let g = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let (c, _) = generate_rr_sets(&g, &IndependentCascade, 50_000, 3, 1);
    c
}

fn max_cover(c: &mut Criterion) {
    let collection = build_collection();
    let mut group = c.benchmark_group("max_cover_50k_sets");
    group.sample_size(10);
    for k in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("lazy_heap", k), &k, |b, &k| {
            b.iter_batched(
                || collection.clone(),
                |mut col| black_box(greedy_max_cover(&mut col, k).covered),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("bucket_queue", k), &k, |b, &k| {
            b.iter_batched(
                || collection.clone(),
                |mut col| black_box(greedy_max_cover_bucket(&mut col, k).covered),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = max_cover
}
criterion_main!(benches);
