//! End-to-end TIM vs TIM+ (the Figure 3/4 micro view): full pipeline cost
//! and the per-phase split, on a NetHEPT-shaped graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tim_bench::{prepare, Model};
use tim_core::{kpt::estimate_kpt, Tim, TimPlus};
use tim_diffusion::IndependentCascade;
use tim_eval::Dataset;
use tim_rng::Rng;

fn pipeline(c: &mut Criterion) {
    let g = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let mut group = c.benchmark_group("pipeline_nethept0.2_eps0.5");
    group.sample_size(10);
    for k in [1usize, 50] {
        group.bench_with_input(BenchmarkId::new("tim", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    Tim::new(IndependentCascade)
                        .epsilon(0.5)
                        .seed(9)
                        .threads(1)
                        .run(&g, k)
                        .theta,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("tim_plus", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    TimPlus::new(IndependentCascade)
                        .epsilon(0.5)
                        .seed(9)
                        .threads(1)
                        .run(&g, k)
                        .theta,
                )
            });
        });
    }
    group.finish();
}

fn kpt_phase(c: &mut Criterion) {
    let g = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let mut group = c.benchmark_group("kpt_estimation");
    group.sample_size(10);
    for k in [1u64, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = Rng::seed_from_u64(11);
                black_box(estimate_kpt(&g, &IndependentCascade, k, 1.0, &mut rng).kpt_star)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = pipeline, kpt_phase
}
criterion_main!(benches);
