//! Warm-state restart cost: cold pool build vs pool-store load.
//!
//! TIM/TIM+'s cost model is front-loaded into sampling the θ-sized
//! RR-set pool; the `PoolStore` layer exists so a `tim serve` restart
//! (or a newly attached tenant with existing state) pays a disk load
//! instead of that build. This bench measures exactly that conversion on
//! the kick-tires graph shape (2k-node BA, wc weights — what
//! `scripts/kick-tires.sh` generates):
//!
//! - `cold_build` — `QueryEngine::new` + `warm()`: plan the θ for
//!   `k ≤ k_max` and sample every RR set (the restart cost without a
//!   store);
//! - `store_load` — `PoolStore::probe` + `QueryEngine::from_pool` + one
//!   warm `select`: read the spilled `.timp`, validate checksum and
//!   provenance, rebuild the inverted index, and answer (the restart
//!   cost with `--pool-dir`);
//! - `state_restart/{cold,warm}` — the same comparison end-to-end
//!   through a `ServerState` with a store-backed pool cache, i.e. what
//!   the server actually does on its first query after boot.
//!
//! The acceptance bar is `store_load` ≥ 5× faster than `cold_build` (the
//! serve_throughput bench showed ≈9.6× for warm-vs-cold serving; this is
//! the same gap moved across a process boundary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use tim_diffusion::IndependentCascade;
use tim_engine::{PoolId, PoolStore, QueryEngine};
use tim_graph::{gen, weights, Graph};
use tim_server::{LabelMap, ServerConfig, ServerState};

const K_MAX: usize = 10;
const EPS: f64 = 0.3;
const SEED: u64 = 7;

/// The kick-tires graph shape: 2k-node BA, weighted-cascade weights.
fn bench_graph() -> Graph {
    let mut g = gen::barabasi_albert(2_000, 4, 0.1, 1);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn cold_engine(graph: &Arc<Graph>) -> QueryEngine<IndependentCascade> {
    let mut engine = QueryEngine::new(Arc::clone(graph), IndependentCascade, "ic")
        .epsilon(EPS)
        .seed(SEED)
        .k_max(K_MAX);
    engine.warm();
    engine
}

fn config(pool_dir: Option<std::path::PathBuf>) -> ServerConfig {
    ServerConfig {
        epsilon: EPS,
        seed: SEED,
        k_max: K_MAX,
        pool_dir,
        persist_pools: true,
        ..ServerConfig::default()
    }
}

fn warm_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_restart");
    group.sample_size(10);

    let graph = Arc::new(bench_graph());
    let dir = std::env::temp_dir().join(format!("tim_bench_warm_restart_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Spill once: the store state every "restart" below loads from.
    let store = Arc::new(PoolStore::open(dir.join("engine")).expect("open store"));
    let warmed = cold_engine(&graph);
    store.spill(&warmed.to_pool()).expect("spill");
    let id = PoolId::from_meta(&warmed.pool_meta());
    drop(warmed);

    // The restart cost without a store: plan + sample everything.
    group.bench_function("cold_build", |b| {
        b.iter(|| {
            let mut engine = cold_engine(&graph);
            black_box(engine.select(K_MAX).seeds.len())
        });
    });

    // The restart cost with a store: read + validate + index + answer.
    group.bench_function("store_load", |b| {
        b.iter(|| {
            let pool = store
                .probe(&id)
                .expect("probe")
                .expect("pool stored for the bench");
            let mut engine =
                QueryEngine::from_pool(Arc::clone(&graph), IndependentCascade, "ic", pool)
                    .expect("provenance matches");
            black_box(engine.select(K_MAX).seeds.len())
        });
    });

    // End-to-end through the serving stack: a fresh ServerState answering
    // its first query, without vs with warm state on disk.
    let n = graph.n();
    group.bench_function("state_restart/cold", |b| {
        b.iter(|| {
            let fresh = dir.join(format!("cold-{}", black_box(0u8)));
            std::fs::remove_dir_all(&fresh).ok();
            let state = ServerState::new(
                Arc::clone(&graph),
                LabelMap::identity(n),
                IndependentCascade,
                "ic",
                config(Some(fresh)),
            );
            black_box(state.handle("select 10").expect("answer").len())
        });
    });
    // Seed the shared state dir once, then measure restarts against it.
    let state_dir = dir.join("state");
    ServerState::new(
        Arc::clone(&graph),
        LabelMap::identity(n),
        IndependentCascade,
        "ic",
        config(Some(state_dir.clone())),
    )
    .handle("select 10")
    .expect("seed spill");
    group.bench_function("state_restart/warm", |b| {
        b.iter(|| {
            let state = ServerState::new(
                Arc::clone(&graph),
                LabelMap::identity(n),
                IndependentCascade,
                "ic",
                config(Some(state_dir.clone())),
            );
            black_box(state.handle("select 10").expect("answer").len())
        });
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = warm_restart
);
criterion_main!(benches);
