//! Forward-simulation throughput: the cost unit of Greedy/CELF++
//! (`O(kmnr)` total) and of ground-truth spread evaluation, across the
//! three engines (IC fast path, LT fast path, generic triggering).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tim_bench::{prepare, Model};
use tim_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold, SimWorkspace};
use tim_eval::Dataset;
use tim_rng::Rng;

fn forward_sim(c: &mut Criterion) {
    let g_ic = prepare(Dataset::NetHept, Some(0.2), Model::Ic);
    let g_lt = prepare(Dataset::NetHept, Some(0.2), Model::Lt);
    let seeds: Vec<u32> = (0..10).collect();
    let mut group = c.benchmark_group("forward_simulation");
    group.throughput(Throughput::Elements(1));

    group.bench_function("ic_fast_path", |b| {
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(ws.simulate_ic(&g_ic, &seeds, &mut rng)));
    });
    group.bench_function("lt_fast_path", |b| {
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(ws.simulate_lt(&g_lt, &seeds, &mut rng)));
    });
    group.bench_function("ic_generic_triggering", |b| {
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(ws.simulate_triggering(&IndependentCascade, &g_ic, &seeds, &mut rng)));
    });
    group.bench_function("lt_generic_triggering", |b| {
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(ws.simulate_triggering(&LinearThreshold, &g_lt, &seeds, &mut rng)));
    });
    // Trait-dispatched entry point (what SpreadEstimator calls).
    group.bench_function("ic_via_trait", |b| {
        let mut ws = SimWorkspace::new();
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(IndependentCascade.simulate(&mut ws, &g_ic, &seeds, &mut rng)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = forward_sim
}
criterion_main!(benches);
