//! Out-of-core graph loading benchmark: v1 heap parse vs v2 mmap open.
//!
//! ```text
//! cargo run --release -p tim_bench --bin graph_load -- [flags]
//!
//! flags:
//!   --quick        kick-tires scale only (CI artifact)
//!   --out <path>   where to write the JSON report (default BENCH_7.json)
//! ```
//!
//! For each scale the harness snapshots the same weighted graph in both
//! formats and measures the cold-start story end to end: fully decoding
//! the v1 snapshot onto the heap, opening the v2 snapshot as a zero-copy
//! `MmapCsr` view, answering a first influence query through the mapped
//! store (page faults included), and answering it again warm. The first
//! query is also run on the heap graph and its seed set compared — a
//! mapping that is fast but wrong fails loudly (`answers_match`), as does
//! a backing-dependent provenance checksum (`checksums_match`).
//!
//! The report is machine readable (schema `tim-bench-graph-load/1`);
//! `bench_schema_check` validates it in CI, and the full-scale run —
//! which must show v2 open+first-query beating the v1 full parse by ≥ 5×
//! at the ~1.3M-arc scale — is checked in at the repo root so the
//! trajectory is diffable across PRs.

use std::time::Instant;
use tim_core::select::node_selection;
use tim_core::GreedyImpl;
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, snapshot, weights, Graph, GraphStore};

struct Opts {
    quick: bool,
    out: String,
}

/// One benched scale.
struct ScaleReport {
    name: &'static str,
    nodes: usize,
    arcs: usize,
    v1_bytes: u64,
    v2_bytes: u64,
    v1_parse_ms: f64,
    v2_open_ms: f64,
    first_query_ms: f64,
    v2_open_plus_query_ms: f64,
    warm_query_ms: f64,
    speedup: f64,
    answers_match: bool,
    checksums_match: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_7.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = it.next().expect("--out requires a value"),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Median of `runs` timed executions of `f`, in milliseconds.
fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], last.unwrap())
}

/// The first query every backing answers: a deterministic seed selection
/// over `theta` RR sets. Small enough to be a "first query", large enough
/// to walk a representative sample of the CSR pages.
fn query<G: tim_graph::CsrAccess>(graph: &G, theta: u64) -> Vec<u32> {
    node_selection(
        graph,
        &IndependentCascade,
        10.min(graph.n().saturating_sub(1)),
        theta,
        0xB7,
        1,
        1,
        tim_core::SelectStrategy::Auto,
        GreedyImpl::LazyHeap,
    )
    .seeds
}

fn run_scale(
    name: &'static str,
    mut graph: Graph,
    theta: u64,
    dir: &std::path::Path,
) -> ScaleReport {
    weights::assign_weighted_cascade(&mut graph);
    let labels: Vec<u64> = (0..graph.n() as u64).collect();
    let v1_path = dir.join(format!("{name}.v1.timg"));
    let v2_path = dir.join(format!("{name}.v2.timg"));
    snapshot::save_snapshot(&graph, &labels, &v1_path).expect("write v1");
    snapshot::save_snapshot_v2(&graph, &labels, &v2_path).expect("write v2");
    let v1_bytes = std::fs::metadata(&v1_path).map(|m| m.len()).unwrap_or(0);
    let v2_bytes = std::fs::metadata(&v2_path).map(|m| m.len()).unwrap_or(0);

    // v1 cold start: the full decode onto the heap (checksummed, every
    // arc copied into fresh Vecs). Median of 3 over a warm page cache —
    // the same cache the mmap path gets, so the comparison is file-format
    // work, not disk speed.
    let (v1_parse_ms, v1_loaded) = median_ms(3, || snapshot::load_snapshot(&v1_path).expect("v1"));

    // v2 cold start: map + validate the layout (no per-arc work), then
    // answer the first query through the mapping, faulting pages in on
    // demand. A fresh mapping per run keeps the "open" honest; the page
    // cache stays warm, exactly as for v1.
    let (v2_open_ms, _) = median_ms(3, || GraphStore::open_mmap(&v2_path).expect("open v2"));
    let (v2_open_plus_query_ms, (store, mapped_seeds)) = median_ms(3, || {
        let store = GraphStore::open_mmap(&v2_path).expect("open v2");
        let seeds = match store.view() {
            tim_graph::CsrView::Heap(g) => query(g, theta),
            tim_graph::CsrView::Mmap(v) => query(v, theta),
        };
        (store, seeds)
    });
    let first_query_ms = (v2_open_plus_query_ms - v2_open_ms).max(0.0);

    // Warm query: same store, pages resident.
    let (warm_query_ms, warm_seeds) = median_ms(3, || match store.view() {
        tim_graph::CsrView::Heap(g) => query(g, theta),
        tim_graph::CsrView::Mmap(v) => query(v, theta),
    });

    let heap_seeds = query(&v1_loaded.graph, theta);
    let answers_match = heap_seeds == mapped_seeds && warm_seeds == mapped_seeds;
    let checksums_match = snapshot::graph_checksum(&v1_loaded.graph) == store.checksum();

    ScaleReport {
        name,
        nodes: graph.n(),
        arcs: graph.m(),
        v1_bytes,
        v2_bytes,
        v1_parse_ms,
        v2_open_ms,
        first_query_ms,
        v2_open_plus_query_ms,
        warm_query_ms,
        speedup: v1_parse_ms / v2_open_plus_query_ms.max(1e-9),
        answers_match,
        checksums_match,
    }
}

fn emit_json(quick: bool, scales: &[ScaleReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tim-bench-graph-load/1\",\n");
    out.push_str("  \"bench\": \"graph_load\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, s) in scales.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"arcs\": {}, \
             \"v1_bytes\": {}, \"v2_bytes\": {}, \
             \"v1_parse_ms\": {:.3}, \"v2_open_ms\": {:.3}, \
             \"first_query_ms\": {:.3}, \"v2_open_plus_query_ms\": {:.3}, \
             \"warm_query_ms\": {:.3}, \"speedup\": {:.1}, \
             \"answers_match\": {}, \"checksums_match\": {}}}{}\n",
            s.name,
            s.nodes,
            s.arcs,
            s.v1_bytes,
            s.v2_bytes,
            s.v1_parse_ms,
            s.v2_open_ms,
            s.first_query_ms,
            s.v2_open_plus_query_ms,
            s.warm_query_ms,
            s.speedup,
            s.answers_match,
            s.checksums_match,
            if i + 1 < scales.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = parse_opts();
    let dir = std::env::temp_dir().join(format!("tim_graph_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let mut scales = Vec::new();

    // The kick-tires graph: the same shape scripts/kick-tires.sh drills.
    eprintln!("graph_load: kick_tires scale");
    let small = gen::barabasi_albert(2_000, 4, 0.0, 1);
    scales.push(run_scale("kick_tires", small, 2_000, &dir));

    if !opts.quick {
        // ~1.3M arcs: the scale the acceptance bar is set at.
        eprintln!("graph_load: paper_1m scale (~1.3M arcs)");
        let big = gen::barabasi_albert(160_000, 8, 0.0, 2);
        scales.push(run_scale("paper_1m", big, 2_000, &dir));
    }

    for s in &scales {
        eprintln!(
            "  {:<10}  {:>9} arcs  v1 parse {:>9.3} ms | v2 open {:>7.3} ms \
             + first query {:>8.3} ms = {:>8.3} ms ({:.1}x) | warm {:>8.3} ms  ok={}",
            s.name,
            s.arcs,
            s.v1_parse_ms,
            s.v2_open_ms,
            s.first_query_ms,
            s.v2_open_plus_query_ms,
            s.speedup,
            s.warm_query_ms,
            s.answers_match && s.checksums_match,
        );
    }

    let json = emit_json(opts.quick, &scales);
    // Self-check the emitter against our own parser before writing: a
    // malformed report should fail here, not in CI.
    tim_bench::json::parse(&json).expect("emitted JSON must parse");
    std::fs::write(&opts.out, &json).expect("write report");
    eprintln!("wrote {}", opts.out);
    std::fs::remove_dir_all(&dir).ok();

    if scales
        .iter()
        .any(|s| !s.answers_match || !s.checksums_match)
    {
        eprintln!("error: mmap answers or checksums diverged from the heap path — see report");
        std::process::exit(1);
    }
}
