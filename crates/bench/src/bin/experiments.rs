//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! cargo run --release -p tim_bench --bin experiments -- <experiment> [flags]
//!
//! experiments: table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 all
//! flags:
//!   --scale <f>   override the dataset scale factor (default: per-dataset)
//!   --quick       smaller sweeps for a fast smoke run
//!   --eps <f>     override epsilon where applicable (default 0.2)
//!   --seed <u64>  RNG seed (default 0)
//!   --csv         emit CSV instead of aligned tables
//! ```
//!
//! Absolute numbers differ from the paper (synthetic stand-in datasets,
//! different hardware); the *shapes* — method ordering, crossovers in k
//! and ε — are the reproduction target. See EXPERIMENTS.md for recorded
//! runs, and DESIGN.md §4–5 for the dataset substitutions and the
//! experiment index.

use std::time::Duration;
use tim_baselines::celf::{CelfGreedy, CelfVariant};
use tim_baselines::irie::Irie;
use tim_baselines::ris::Ris;
use tim_baselines::simpath::SimPath;
use tim_baselines::SeedSelector;
use tim_bench::{eps_sweep, k_sweep, prepare, Model};
use tim_core::{Tim, TimPlus, TimResult};
use tim_diffusion::{DiffusionModel, SpreadEstimator};
use tim_eval::memory::{format_bytes, peak_bytes, reset_peak, TrackingAllocator};
use tim_eval::{time, Dataset, Table};
use tim_graph::Graph;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

#[derive(Debug, Clone)]
struct Opts {
    scale: Option<f64>,
    quick: bool,
    csv: bool,
    eps: f64,
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: None,
            quick: false,
            csv: false,
            eps: 0.2,
            seed: 0,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <table2|fig3..fig12|all> [--scale f] [--quick] [--eps f] [--seed u64] [--csv]");
        std::process::exit(2);
    }
    let mut opts = Opts::default();
    let mut exp = String::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number"),
                )
            }
            "--eps" => {
                opts.eps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--eps needs a number")
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            name if exp.is_empty() && !name.starts_with("--") => exp = name.to_string(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    match exp.as_str() {
        "table2" => table2(&opts),
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig7" => fig7(&opts),
        "fig8" => fig8_9(&opts, false),
        "fig9" => fig8_9(&opts, true),
        "fig10" => fig10_11(&opts, false),
        "fig11" => fig10_11(&opts, true),
        "fig12" => fig12(&opts),
        "ablation" => ablation(&opts),
        "all" => {
            table2(&opts);
            fig3(&opts);
            fig4(&opts);
            fig5(&opts);
            fig6(&opts);
            fig7(&opts);
            fig8_9(&opts, false);
            fig8_9(&opts, true);
            fig10_11(&opts, false);
            fig10_11(&opts, true);
            fig12(&opts);
            ablation(&opts);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn emit(opts: &Opts, title: &str, table: &Table) {
    println!("\n=== {title} ===");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Harness-wide reduced-fidelity settings for the expensive baselines,
/// noted in every table that uses them (the theoretical settings take
/// hours-days, which is the paper's point — Figure 3 shows RIS/CELF++ at
/// 10^3..10^5 seconds).
const CELF_RUNS: usize = 100; // paper: r = 10 000
/// τ constant for RIS. c = 1 is the *literal* Θ(kℓ(m+n)log n/ε³) threshold
/// with unit constant — already far below the hidden constant of Borgs et
/// al., yet orders of magnitude above TIM+'s sample count, reproducing
/// Figure 3's ordering.
const RIS_TAU_C: f64 = 1.0;
/// Memory-safety cap; runs that hit it report a *lower bound* on RIS cost.
const RIS_MAX_SETS: u64 = 30_000_000;
/// CELF++'s initial pass alone is n·r simulations; k above this only adds
/// to an already-demonstrated 10²–10³× gap, so the harness stops here.
const CELF_MAX_K: usize = 10;

// ---------------------------------------------------------------- table 2

fn table2(opts: &Opts) {
    let mut t = Table::new([
        "dataset",
        "paper n",
        "paper m",
        "type",
        "paper avg deg",
        "stand-in n",
        "stand-in arcs",
        "stand-in arcs/node",
    ]);
    for d in Dataset::all() {
        let g = d.build(opts.scale.unwrap_or_else(|| d.default_scale()), 1);
        let stats = g.degree_stats();
        t.push_row([
            d.name().to_string(),
            d.paper_n().to_string(),
            d.paper_m().to_string(),
            if d.undirected() {
                "undirected"
            } else {
                "directed"
            }
            .to_string(),
            format!("{:.1}", d.paper_arcs_per_node()),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.1}", stats.avg_degree),
        ]);
    }
    emit(
        opts,
        "Table 2: dataset characteristics (paper vs stand-in)",
        &t,
    );
}

// ------------------------------------------------------------ fig 3: time

fn run_tim<M: DiffusionModel + Sync + Clone>(
    g: &Graph,
    model: M,
    k: usize,
    eps: f64,
    seed: u64,
) -> TimResult {
    Tim::new(model).epsilon(eps).seed(seed).run(g, k)
}

fn run_tim_plus<M: DiffusionModel + Sync + Clone>(
    g: &Graph,
    model: M,
    k: usize,
    eps: f64,
    seed: u64,
) -> TimResult {
    TimPlus::new(model).epsilon(eps).seed(seed).run(g, k)
}

fn fig3(opts: &Opts) {
    for model in [Model::Ic, Model::Lt] {
        let g = prepare(Dataset::NetHept, opts.scale, model);
        let mut t = Table::new(["k", "TIM (s)", "TIM+ (s)", "RIS (s)", "CELF++ (s)"]);
        for k in k_sweep(opts.quick) {
            let (tim, tim_t);
            let (timp, timp_t);
            let (ris_sets, ris_t);
            let celf_t;
            match model {
                Model::Ic => {
                    let m = model.ic();
                    (tim, tim_t) = time(|| run_tim(&g, m, k, opts.eps, opts.seed));
                    (timp, timp_t) = time(|| run_tim_plus(&g, m, k, opts.eps, opts.seed));
                    (ris_sets, ris_t) = time(|| {
                        Ris::new(m)
                            .epsilon(opts.eps)
                            .tau_constant(RIS_TAU_C)
                            .max_sets(RIS_MAX_SETS)
                            .seed(opts.seed)
                            .select_with_stats(&g, k)
                            .1
                    });
                    celf_t = if k > CELF_MAX_K {
                        None
                    } else {
                        Some(
                            time(|| {
                                CelfGreedy::new(m)
                                    .variant(CelfVariant::CelfPlusPlus)
                                    .runs(CELF_RUNS)
                                    .seed(opts.seed)
                                    .select(&g, k)
                            })
                            .1,
                        )
                    };
                }
                Model::Lt => {
                    let m = model.lt();
                    (tim, tim_t) = time(|| run_tim(&g, m, k, opts.eps, opts.seed));
                    (timp, timp_t) = time(|| run_tim_plus(&g, m, k, opts.eps, opts.seed));
                    (ris_sets, ris_t) = time(|| {
                        Ris::new(m)
                            .epsilon(opts.eps)
                            .tau_constant(RIS_TAU_C)
                            .max_sets(RIS_MAX_SETS)
                            .seed(opts.seed)
                            .select_with_stats(&g, k)
                            .1
                    });
                    celf_t = if k > CELF_MAX_K {
                        None
                    } else {
                        Some(
                            time(|| {
                                CelfGreedy::new(m)
                                    .variant(CelfVariant::CelfPlusPlus)
                                    .runs(CELF_RUNS)
                                    .seed(opts.seed)
                                    .select(&g, k)
                            })
                            .1,
                        )
                    };
                }
            }
            let _ = (tim, timp, ris_sets);
            t.push_row([
                k.to_string(),
                secs(tim_t),
                secs(timp_t),
                secs(ris_t),
                celf_t.map_or("-".into(), secs),
            ]);
        }
        emit(
            opts,
            &format!(
                "Figure 3{}: running time vs k on NetHEPT, {} model \
                 (eps={}, CELF++ r={CELF_RUNS}, RIS c={RIS_TAU_C})",
                if model == Model::Ic { "a" } else { "b" },
                model.name(),
                opts.eps
            ),
            &t,
        );
    }
}

// ----------------------------------------------- fig 4: phase breakdown

fn fig4(opts: &Opts) {
    let g = prepare(Dataset::NetHept, opts.scale, Model::Ic);
    for plus in [false, true] {
        let mut t = Table::new([
            "k",
            "Alg 2 est. (s)",
            "Alg 3 refine (s)",
            "Alg 1 select (s)",
            "total (s)",
            "theta",
        ]);
        for k in k_sweep(opts.quick) {
            let r = if plus {
                run_tim_plus(
                    &g,
                    tim_diffusion::IndependentCascade,
                    k,
                    opts.eps,
                    opts.seed,
                )
            } else {
                run_tim(
                    &g,
                    tim_diffusion::IndependentCascade,
                    k,
                    opts.eps,
                    opts.seed,
                )
            };
            t.push_row([
                k.to_string(),
                secs(r.phases.parameter_estimation),
                secs(r.phases.refinement),
                secs(r.phases.node_selection),
                secs(r.phases.total()),
                r.theta.to_string(),
            ]);
        }
        emit(
            opts,
            &format!(
                "Figure 4{}: {} computation-time breakdown on NetHEPT (IC, eps={})",
                if plus { "b" } else { "a" },
                if plus { "TIM+" } else { "TIM" },
                opts.eps
            ),
            &t,
        );
    }
}

// --------------------------------------- fig 5: spread + KPT* and KPT+

fn fig5(opts: &Opts) {
    let mc_runs = if opts.quick { 2_000 } else { 10_000 };
    for model in [Model::Ic, Model::Lt] {
        let g = prepare(Dataset::NetHept, opts.scale, model);
        let mut t = Table::new(["k", "TIM", "TIM+", "RIS", "CELF++", "KPT*", "KPT+"]);

        // Greedy-style selectors are prefix-nested: select once at k_max.
        let k_values = k_sweep(opts.quick);
        let k_max = *k_values.iter().max().unwrap();

        macro_rules! with_model {
            ($m:expr) => {{
                let m = $m;
                let est = SpreadEstimator::new(m).runs(mc_runs).seed(opts.seed ^ 0xE5);
                // CELF++ seeds are greedy-nested; one run at the capped k
                // serves every smaller k.
                let celf_seeds = CelfGreedy::new(m)
                    .variant(CelfVariant::CelfPlusPlus)
                    .runs(CELF_RUNS)
                    .seed(opts.seed)
                    .select(&g, k_max.min(CELF_MAX_K));
                for &k in &k_values {
                    let tim = run_tim(&g, m, k, opts.eps, opts.seed);
                    let timp = run_tim_plus(&g, m, k, opts.eps, opts.seed);
                    let ris = Ris::new(m)
                        .epsilon(opts.eps)
                        .tau_constant(RIS_TAU_C)
                        .max_sets(RIS_MAX_SETS)
                        .seed(opts.seed)
                        .select(&g, k);
                    let celf_cell = if k <= celf_seeds.len() {
                        format!("{:.0}", est.estimate(&g, &celf_seeds[..k]))
                    } else {
                        "-".into()
                    };
                    t.push_row([
                        k.to_string(),
                        format!("{:.0}", est.estimate(&g, &tim.seeds)),
                        format!("{:.0}", est.estimate(&g, &timp.seeds)),
                        format!("{:.0}", est.estimate(&g, &ris)),
                        celf_cell,
                        format!("{:.0}", timp.kpt_star),
                        format!("{:.0}", timp.kpt_plus.unwrap()),
                    ]);
                }
            }};
        }
        match model {
            Model::Ic => with_model!(model.ic()),
            Model::Lt => with_model!(model.lt()),
        }
        emit(
            opts,
            &format!(
                "Figure 5{}: expected spread + KPT bounds on NetHEPT, {} model \
                 ({mc_runs} MC runs/estimate)",
                if model == Model::Ic { "a" } else { "b" },
                model.name()
            ),
            &t,
        );
    }
}

// ------------------------------------- fig 6: time vs k, large datasets

fn fig6(opts: &Opts) {
    for dataset in Dataset::large() {
        for model in [Model::Ic, Model::Lt] {
            let g = prepare(dataset, opts.scale, model);
            // Mirror the paper: TIM is omitted on Twitter for cost.
            let include_tim = dataset != Dataset::Twitter;
            let mut t = Table::new(["k", "TIM (s)", "TIM+ (s)", "TIM+ theta"]);
            for k in k_sweep(opts.quick) {
                let (timp, timp_t);
                let tim_t;
                match model {
                    Model::Ic => {
                        let m = model.ic();
                        (timp, timp_t) = time(|| run_tim_plus(&g, m, k, opts.eps, opts.seed));
                        tim_t =
                            include_tim.then(|| time(|| run_tim(&g, m, k, opts.eps, opts.seed)).1);
                    }
                    Model::Lt => {
                        let m = model.lt();
                        (timp, timp_t) = time(|| run_tim_plus(&g, m, k, opts.eps, opts.seed));
                        tim_t =
                            include_tim.then(|| time(|| run_tim(&g, m, k, opts.eps, opts.seed)).1);
                    }
                }
                t.push_row([
                    k.to_string(),
                    tim_t.map_or("-".into(), secs),
                    secs(timp_t),
                    timp.theta.to_string(),
                ]);
            }
            emit(
                opts,
                &format!(
                    "Figure 6 ({}, {} model): running time vs k \
                     [stand-in n={}, m={}, eps={}]",
                    dataset.name(),
                    model.name(),
                    g.n(),
                    g.m(),
                    opts.eps
                ),
                &t,
            );
        }
    }
}

// ------------------------------------------- fig 7: time vs epsilon

fn fig7(opts: &Opts) {
    for dataset in Dataset::large() {
        let mut t = Table::new([
            "eps",
            "TIM IC (s)",
            "TIM LT (s)",
            "TIM+ IC (s)",
            "TIM+ LT (s)",
        ]);
        let g_ic = prepare(dataset, opts.scale, Model::Ic);
        let g_lt = prepare(dataset, opts.scale, Model::Lt);
        let include_tim = dataset != Dataset::Twitter;
        let k = 50;
        for eps in eps_sweep(opts.quick) {
            let tim_ic = include_tim.then(|| {
                time(|| run_tim(&g_ic, tim_diffusion::IndependentCascade, k, eps, opts.seed)).1
            });
            let tim_lt = include_tim.then(|| {
                time(|| run_tim(&g_lt, tim_diffusion::LinearThreshold, k, eps, opts.seed)).1
            });
            let timp_ic =
                time(|| run_tim_plus(&g_ic, tim_diffusion::IndependentCascade, k, eps, opts.seed))
                    .1;
            let timp_lt =
                time(|| run_tim_plus(&g_lt, tim_diffusion::LinearThreshold, k, eps, opts.seed)).1;
            t.push_row([
                format!("{eps}"),
                tim_ic.map_or("-".into(), secs),
                tim_lt.map_or("-".into(), secs),
                secs(timp_ic),
                secs(timp_lt),
            ]);
        }
        emit(
            opts,
            &format!(
                "Figure 7 ({}): running time vs eps at k=50 [stand-in n={}]",
                dataset.name(),
                g_ic.n()
            ),
            &t,
        );
    }
}

// ------------------------- fig 8 / fig 9: TIM+ vs IRIE under IC

/// §7.3 datasets: everything except Twitter.
fn heuristic_datasets() -> [Dataset; 4] {
    [
        Dataset::NetHept,
        Dataset::Epinions,
        Dataset::Dblp,
        Dataset::LiveJournal,
    ]
}

fn fig8_9(opts: &Opts, spread: bool) {
    let mc_runs = if opts.quick { 2_000 } else { 10_000 };
    for dataset in heuristic_datasets() {
        let g = prepare(dataset, opts.scale, Model::Ic);
        let mut t = Table::new(if spread {
            ["k", "TIM+ spread", "IRIE spread"]
        } else {
            ["k", "TIM+ (s)", "IRIE (s)"]
        });
        let est = SpreadEstimator::new(tim_diffusion::IndependentCascade)
            .runs(mc_runs)
            .seed(opts.seed ^ 0x89);
        let k_values = k_sweep(opts.quick);
        let k_max = *k_values.iter().max().unwrap();
        // IRIE seeds are greedy-nested: one run at k_max serves all k for
        // the spread figure; timing reruns per k for fig 8.
        let irie = Irie::new(tim_diffusion::IndependentCascade).seed(opts.seed);
        let irie_seeds_max = spread.then(|| irie.select(&g, k_max));
        for &k in &k_values {
            // §7.3: TIM+ with eps = ell = 1 (weak guarantee, high speed).
            let (timp, timp_t) = time(|| {
                TimPlus::new(tim_diffusion::IndependentCascade)
                    .epsilon(1.0)
                    .ell(1.0)
                    .seed(opts.seed)
                    .run(&g, k)
            });
            if spread {
                let irie_seeds = &irie_seeds_max.as_ref().unwrap()[..k];
                t.push_row([
                    k.to_string(),
                    format!("{:.0}", est.estimate(&g, &timp.seeds)),
                    format!("{:.0}", est.estimate(&g, irie_seeds)),
                ]);
            } else {
                let (_, irie_t) = time(|| irie.select(&g, k));
                t.push_row([k.to_string(), secs(timp_t), secs(irie_t)]);
            }
        }
        emit(
            opts,
            &format!(
                "Figure {} ({}): TIM+ (eps=l=1) vs IRIE under IC — {} [stand-in n={}]",
                if spread { "9" } else { "8" },
                dataset.name(),
                if spread {
                    "expected spread"
                } else {
                    "running time"
                },
                g.n()
            ),
            &t,
        );
    }
}

// ----------------------- fig 10 / fig 11: TIM+ vs SimPath under LT

fn fig10_11(opts: &Opts, spread: bool) {
    let mc_runs = if opts.quick { 2_000 } else { 10_000 };
    for dataset in heuristic_datasets() {
        // SimPath's path enumeration is the bottleneck; keep the larger
        // stand-ins modest (the paper's SimPath runs took 10^4+ seconds).
        let scale = opts.scale.or(match dataset {
            Dataset::Dblp => Some(0.05),
            Dataset::LiveJournal => Some(0.005),
            _ => None,
        });
        let g = prepare(dataset, scale, Model::Lt);
        let mut t = Table::new(if spread {
            ["k", "TIM+ spread", "SimPath spread"]
        } else {
            ["k", "TIM+ (s)", "SimPath (s)"]
        });
        let est = SpreadEstimator::new(tim_diffusion::LinearThreshold)
            .runs(mc_runs)
            .seed(opts.seed ^ 0xAB);
        let k_values = k_sweep(opts.quick);
        let k_max = *k_values.iter().max().unwrap();
        let simpath = SimPath::new().eta(1e-3).lookahead(4);
        let sp_seeds_max = spread.then(|| simpath.select(&g, k_max));
        for &k in &k_values {
            let (timp, timp_t) = time(|| {
                TimPlus::new(tim_diffusion::LinearThreshold)
                    .epsilon(1.0)
                    .ell(1.0)
                    .seed(opts.seed)
                    .run(&g, k)
            });
            if spread {
                let sp_seeds = &sp_seeds_max.as_ref().unwrap()[..k];
                t.push_row([
                    k.to_string(),
                    format!("{:.0}", est.estimate(&g, &timp.seeds)),
                    format!("{:.0}", est.estimate(&g, sp_seeds)),
                ]);
            } else {
                let (_, sp_t) = time(|| simpath.select(&g, k));
                t.push_row([k.to_string(), secs(timp_t), secs(sp_t)]);
            }
        }
        emit(
            opts,
            &format!(
                "Figure {} ({}): TIM+ (eps=l=1) vs SimPath under LT — {} [stand-in n={}]",
                if spread { "11" } else { "10" },
                dataset.name(),
                if spread {
                    "expected spread"
                } else {
                    "running time"
                },
                g.n()
            ),
            &t,
        );
    }
}

// -------------------------------------------- fig 12: memory vs k

fn fig12(opts: &Opts) {
    for dataset in Dataset::all() {
        let mut t = Table::new([
            "k",
            "IC peak heap",
            "IC RR arena",
            "LT peak heap",
            "LT RR arena",
        ]);
        let g_ic = prepare(dataset, opts.scale, Model::Ic);
        let g_lt = prepare(dataset, opts.scale, Model::Lt);
        // ell = 1 + log 3 / log n, as in §7.4 (success >= 1 - 1/n): the
        // TimPlus driver applies that adjustment internally.
        for k in k_sweep(opts.quick) {
            reset_peak();
            let r_ic = TimPlus::new(tim_diffusion::IndependentCascade)
                .epsilon(if opts.quick { 0.3 } else { 0.1 })
                .seed(opts.seed)
                .run(&g_ic, k);
            let ic_peak = peak_bytes();
            reset_peak();
            let r_lt = TimPlus::new(tim_diffusion::LinearThreshold)
                .epsilon(if opts.quick { 0.3 } else { 0.1 })
                .seed(opts.seed)
                .run(&g_lt, k);
            let lt_peak = peak_bytes();
            t.push_row([
                k.to_string(),
                format_bytes(ic_peak),
                format_bytes(r_ic.rr_memory_bytes),
                format_bytes(lt_peak),
                format_bytes(r_lt.rr_memory_bytes),
            ]);
        }
        emit(
            opts,
            &format!(
                "Figure 12 ({}): TIM+ memory vs k [stand-in n={}, m={}, eps={}]",
                dataset.name(),
                g_ic.n(),
                g_ic.m(),
                if opts.quick { 0.3 } else { 0.1 }
            ),
            &t,
        );
    }
}

// --------------------------- ablations (DESIGN.md §6 decision targets)

fn ablation(opts: &Opts) {
    let g = prepare(Dataset::NetHept, opts.scale, Model::Ic);
    let ic = tim_diffusion::IndependentCascade;
    let k = 50;

    // A. Greedy max-coverage implementation (lazy heap vs bucket queue).
    {
        let mut t = Table::new(["k", "lazy heap (s)", "bucket queue (s)"]);
        for k in [1usize, 10, 50] {
            let (_, lazy_t) = time(|| {
                TimPlus::new(ic)
                    .epsilon(opts.eps)
                    .seed(opts.seed)
                    .greedy(tim_core::GreedyImpl::LazyHeap)
                    .run(&g, k)
            });
            let (_, bucket_t) = time(|| {
                TimPlus::new(ic)
                    .epsilon(opts.eps)
                    .seed(opts.seed)
                    .greedy(tim_core::GreedyImpl::BucketQueue)
                    .run(&g, k)
            });
            t.push_row([k.to_string(), secs(lazy_t), secs(bucket_t)]);
        }
        emit(
            opts,
            "Ablation A: greedy max-coverage variant (TIM+ total time)",
            &t,
        );
    }

    // B. θ sensitivity: spread of NodeSelection at fractions of TIM+'s θ.
    {
        let base = TimPlus::new(ic)
            .epsilon(opts.eps)
            .seed(opts.seed)
            .run(&g, k);
        let est = SpreadEstimator::new(ic).runs(5_000).seed(opts.seed ^ 0x51);
        let mut t = Table::new(["theta multiplier", "theta", "MC spread", "vs full"]);
        let full_spread = est.estimate(&g, &base.seeds);
        for mult in [0.1f64, 0.25, 0.5, 1.0, 2.0] {
            let theta = ((base.theta as f64 * mult) as u64).max(1);
            let sel = tim_core::select::node_selection(
                &g,
                &ic,
                k,
                theta,
                opts.seed ^ 0x77,
                1,
                1,
                tim_core::SelectStrategy::Auto,
                tim_core::GreedyImpl::LazyHeap,
            );
            let spread = est.estimate(&g, &sel.seeds);
            t.push_row([
                format!("{mult}"),
                theta.to_string(),
                format!("{spread:.0}"),
                format!("{:+.1}%", 100.0 * (spread - full_spread) / full_spread),
            ]);
        }
        emit(
            opts,
            &format!(
                "Ablation B: theta sensitivity at k={k} (guaranteed theta = {})",
                base.theta
            ),
            &t,
        );
    }

    // C. ε′ choice for RefineKPT: total RR sets vs the §4.1 minimiser.
    {
        let auto = tim_core::math::epsilon_prime(opts.eps, k as u64, 1.0);
        let mut t = Table::new(["eps'", "total RR sets", "KPT+", "time (s)"]);
        for eps_p in [0.2f64, 0.5, 1.0, auto, 2.0, 4.0] {
            let (r, d) = time(|| {
                TimPlus::new(ic)
                    .epsilon(opts.eps)
                    .epsilon_prime(eps_p)
                    .seed(opts.seed)
                    .run(&g, k)
            });
            let tag = if (eps_p - auto).abs() < 1e-12 {
                format!("{eps_p:.3} (paper's minimiser)")
            } else {
                format!("{eps_p:.3}")
            };
            t.push_row([
                tag,
                r.total_rr_sets.to_string(),
                format!("{:.0}", r.kpt_plus.unwrap()),
                secs(d),
            ]);
        }
        emit(
            opts,
            "Ablation C: eps' choice in RefineKPT (total sampling effort)",
            &t,
        );
    }

    // D. TIM vs TIM+ vs IMM (the successor algorithm, our extension).
    {
        let est = SpreadEstimator::new(ic).runs(5_000).seed(opts.seed ^ 0x99);
        let mut t = Table::new(["algorithm", "time (s)", "RR sets", "MC spread"]);
        let (tim, tim_t) = time(|| Tim::new(ic).epsilon(opts.eps).seed(opts.seed).run(&g, k));
        let (timp, timp_t) = time(|| {
            TimPlus::new(ic)
                .epsilon(opts.eps)
                .seed(opts.seed)
                .run(&g, k)
        });
        let (imm, imm_t) = time(|| {
            tim_core::Imm::new(ic)
                .epsilon(opts.eps)
                .seed(opts.seed)
                .run(&g, k)
        });
        t.push_row([
            "TIM".into(),
            secs(tim_t),
            tim.total_rr_sets.to_string(),
            format!("{:.0}", est.estimate(&g, &tim.seeds)),
        ]);
        t.push_row([
            "TIM+".into(),
            secs(timp_t),
            timp.total_rr_sets.to_string(),
            format!("{:.0}", est.estimate(&g, &timp.seeds)),
        ]);
        t.push_row([
            "IMM".into(),
            secs(imm_t),
            imm.theta.to_string(),
            format!("{:.0}", est.estimate(&g, &imm.seeds)),
        ]);
        emit(
            opts,
            &format!("Ablation D: TIM vs TIM+ vs IMM at k={k}, eps={}", opts.eps),
            &t,
        );
    }
}
