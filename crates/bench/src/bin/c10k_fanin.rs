//! Fan-in serving benchmark: thousands of concurrent scripted sessions
//! against one server, event-loop core vs thread-pool core.
//!
//! ```text
//! cargo run --release -p tim_bench --bin c10k_fanin -- [flags]
//!
//! flags:
//!   --quick             reduced scale for CI (fewer sessions, smaller graph)
//!   --sessions <n>      override the per-mode session count
//!   --out <path>        where to write the JSON report (default BENCH_6.json)
//! ```
//!
//! Every session writes a short pipelined query script, half-closes, and
//! reads to EOF. Transcripts are checked byte-for-byte against a serial
//! replay through the same session machinery — a run that answers fast
//! but wrong fails loudly (`transcripts_ok`). The report is machine
//! readable (schema `tim-bench-fanin/1`); `bench_schema_check` validates
//! it in CI and the full-scale run is checked in at the repo root so the
//! trajectory is diffable across PRs.
//!
//! Fairness note: the event-loop mode opens every session at once (that
//! is the point of the epoll core); the thread-pool mode is driven with
//! at most 128 in flight so the measurement stays inside the listener
//! backlog — beyond that the kernel drops SYNs and the numbers would
//! measure retransmission timers, not the server.

#[cfg(target_os = "linux")]
mod fanin_bench {
    use std::sync::Arc;
    use std::time::Duration;
    use tim_diffusion::IndependentCascade;
    use tim_server::{fanin, reactor, LabelMap, Server, ServerConfig, ServerState};

    /// One benched serving mode.
    struct ModeReport {
        mode: &'static str,
        threads: usize,
        sessions: usize,
        max_in_flight: usize,
        wall_ms: f64,
        sessions_per_sec: f64,
        p50_ms: f64,
        p99_ms: f64,
        first_byte_p50_ms: f64,
        first_byte_p99_ms: f64,
        transcripts_ok: bool,
    }

    struct Opts {
        quick: bool,
        sessions: Option<usize>,
        out: String,
    }

    /// The query rotation every session draws from. Selections stay
    /// within the warmed `k_max` so answers are interleaving-independent
    /// (the determinism the transcript check relies on).
    const VARIANTS: &[&[&str]] = &[
        &["ping", "select 3", "eval 0,1"],
        &["select 5", "marginal 0 1", "ping"],
        &["batch 3", "ping", "select 2", "eval 1,2"],
        &["graphs", "use default", "select 4 fast"],
        &["stats", "select 1", "ping"],
    ];

    fn parse_opts() -> Opts {
        let mut opts = Opts {
            quick: false,
            sessions: None,
            out: "BENCH_6.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--sessions" => {
                    let v = it.next().expect("--sessions requires a value");
                    opts.sessions = Some(v.parse().expect("--sessions: not a number"));
                }
                "--out" => opts.out = it.next().expect("--out requires a value"),
                other => {
                    eprintln!("unknown flag: {other}");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    fn build_state(
        quick: bool,
        event_loop: bool,
        threads: usize,
    ) -> (Arc<ServerState<IndependentCascade>>, usize, usize) {
        let nodes = if quick { 300 } else { 1000 };
        let mut g = tim_graph::gen::barabasi_albert(nodes, 4, 0.0, 1);
        tim_graph::weights::assign_weighted_cascade(&mut g);
        let arcs = g.m();
        let labels = LabelMap::identity(g.n());
        let config = ServerConfig {
            threads,
            pool_cache: 4,
            epsilon: 0.8,
            ell: 1.0,
            seed: 7,
            k_max: 8,
            sample_threads: 1,
            event_loop,
            ..ServerConfig::default()
        };
        let state = Arc::new(ServerState::new(
            g,
            labels,
            IndependentCascade,
            "ic",
            config,
        ));
        // Warm the default pool before serving: sessions then never
        // trigger a θ-extension, so transcripts don't depend on which
        // session arrives first.
        state.warm_default();
        (state, nodes, arcs)
    }

    fn wire(script: &[&str]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for line in script {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        }
        bytes
    }

    fn serial_replay(state: &ServerState<IndependentCascade>, script: &[&str]) -> Vec<u8> {
        let mut session = state.session();
        let mut out = Vec::new();
        for line in script {
            for a in session.push_line(line) {
                out.extend_from_slice(a.as_bytes());
                out.push(b'\n');
            }
        }
        for a in session.finish() {
            out.extend_from_slice(a.as_bytes());
            out.push(b'\n');
        }
        out
    }

    fn run_mode(
        mode: &'static str,
        event_loop: bool,
        threads: usize,
        sessions: usize,
        max_in_flight: usize,
        quick: bool,
    ) -> (ModeReport, usize, usize) {
        let (state, nodes, arcs) = build_state(quick, event_loop, threads);
        let expected: Vec<Vec<u8>> = VARIANTS.iter().map(|s| serial_replay(&state, s)).collect();
        let scripts: Vec<Vec<u8>> = (0..sessions)
            .map(|i| wire(VARIANTS[i % VARIANTS.len()]))
            .collect();

        let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").expect("bind");
        let handle = server.start();
        let report = fanin::drive_sessions(
            handle.addr(),
            &scripts,
            max_in_flight,
            Duration::from_secs(900),
        )
        .expect("fan-in run");
        handle.stop();

        let transcripts_ok = report
            .outcomes
            .iter()
            .enumerate()
            .all(|(i, o)| o.transcript == expected[i % VARIANTS.len()]);
        // Session lifetime (connect → EOF) is dominated by admission
        // queueing under an everything-at-once fan-in; first-byte is the
        // per-session responsiveness number comparable across modes.
        let stats = fanin::latency_stats(&report.outcomes);
        let wall = report.wall.as_secs_f64();
        (
            ModeReport {
                mode,
                threads,
                sessions,
                max_in_flight,
                wall_ms: wall * 1e3,
                sessions_per_sec: sessions as f64 / wall,
                p50_ms: stats.p50_ms,
                p99_ms: stats.p99_ms,
                first_byte_p50_ms: stats
                    .first_byte_p50_ms
                    .expect("every script elicits answer bytes"),
                first_byte_p99_ms: stats
                    .first_byte_p99_ms
                    .expect("every script elicits answer bytes"),
                transcripts_ok,
            },
            nodes,
            arcs,
        )
    }

    fn emit_json(quick: bool, nodes: usize, arcs: usize, modes: &[ModeReport]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"tim-bench-fanin/1\",\n");
        out.push_str("  \"bench\": \"c10k_fanin\",\n");
        out.push_str("  \"protocol\": \"tim/3\",\n");
        out.push_str(&format!("  \"quick\": {quick},\n"));
        out.push_str(&format!(
            "  \"graph\": {{\"kind\": \"barabasi_albert\", \"nodes\": {nodes}, \"arcs\": {arcs}}},\n"
        ));
        out.push_str("  \"modes\": [\n");
        for (i, m) in modes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"sessions\": {}, \
                 \"max_in_flight\": {}, \"wall_ms\": {:.1}, \"sessions_per_sec\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"first_byte_p50_ms\": {:.3}, \"first_byte_p99_ms\": {:.3}, \
                 \"transcripts_ok\": {}}}{}\n",
                m.mode,
                m.threads,
                m.sessions,
                m.max_in_flight,
                m.wall_ms,
                m.sessions_per_sec,
                m.p50_ms,
                m.p99_ms,
                m.first_byte_p50_ms,
                m.first_byte_p99_ms,
                m.transcripts_ok,
                if i + 1 < modes.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn main() {
        let opts = parse_opts();
        let sessions = opts
            .sessions
            .unwrap_or(if opts.quick { 1000 } else { 10_000 });

        // Every fan-in session costs two fds (one in the driver, one in
        // the server) plus slack for listeners/epoll instances. If the
        // hard limit won't cover full concurrency, cap in-flight rather
        // than letting accept()/connect() die on EMFILE mid-run.
        let want = (2 * sessions + 512) as u64;
        let got = reactor::raise_nofile_limit(want);
        let in_flight_cap = ((got.saturating_sub(512)) / 2).max(1) as usize;
        let ev_in_flight = sessions.min(in_flight_cap);
        if ev_in_flight < sessions {
            eprintln!("note: RLIMIT_NOFILE {got} caps concurrency at {ev_in_flight} of {sessions}");
        }

        eprintln!(
            "c10k_fanin: {sessions} sessions per mode ({})",
            if opts.quick { "quick" } else { "full" }
        );

        // Event loop: every session open at once across 2 shards (minus
        // any fd-limit cap).
        let (ev, nodes, arcs) = run_mode("event_loop", true, 2, sessions, ev_in_flight, opts.quick);
        eprintln!(
            "  event_loop:  {:>8.1} sessions/s  p50 {:>8.3} ms  p99 {:>8.3} ms  \
             first-byte p50 {:>8.3} ms  ok={}",
            ev.sessions_per_sec, ev.p50_ms, ev.p99_ms, ev.first_byte_p50_ms, ev.transcripts_ok
        );

        // Thread pool: one thread per live connection; drive at most 128
        // in flight (the listener backlog) so queueing happens in
        // accept(), not in SYN retransmits.
        let (tp, _, _) = run_mode("thread_pool", false, 32, sessions, 128, opts.quick);
        eprintln!(
            "  thread_pool: {:>8.1} sessions/s  p50 {:>8.3} ms  p99 {:>8.3} ms  \
             first-byte p50 {:>8.3} ms  ok={}",
            tp.sessions_per_sec, tp.p50_ms, tp.p99_ms, tp.first_byte_p50_ms, tp.transcripts_ok
        );

        let modes = [ev, tp];
        let json = emit_json(opts.quick, nodes, arcs, &modes);
        // Self-check the emitter against our own parser before writing:
        // a malformed report should fail here, not in CI.
        tim_bench::json::parse(&json).expect("emitted JSON must parse");
        std::fs::write(&opts.out, &json).expect("write report");
        eprintln!("wrote {}", opts.out);

        if modes.iter().any(|m| !m.transcripts_ok) {
            eprintln!("error: transcript divergence — see report");
            std::process::exit(1);
        }
    }
}

#[cfg(target_os = "linux")]
fn main() {
    fanin_bench::main();
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("c10k_fanin requires Linux (epoll-based fan-in driver)");
    std::process::exit(1);
}
