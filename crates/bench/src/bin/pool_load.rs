//! Out-of-core pool restore benchmark: v1 heap decode vs v2 mmap open.
//!
//! ```text
//! cargo run --release -p tim_bench --bin pool_load -- [flags]
//!
//! flags:
//!   --quick        kick-tires scale only (CI artifact)
//!   --out <path>   where to write the JSON report (default BENCH_10.json)
//! ```
//!
//! For each scale the harness samples one real RR-set pool (the exact
//! sets `generate_rr_sets` produces for the graph), spills it in both
//! `.timp` formats, and measures the restore-to-first-answer story end
//! to end: the v1 path reads the whole file, decodes every set onto the
//! heap, and rebuilds the inverted index before greedy can run; the v2
//! path maps the file — the persisted inverted index included — and the
//! first `select` runs greedy straight over the mapped posting lists.
//! Both paths answer the same first query and their seed sets are
//! compared — a mapping that is fast but wrong fails loudly
//! (`answers_match`), as does a restore that loses provenance
//! (`provenance_match`). The deferred full-checksum scan the server runs
//! under `--mmap-pools` (`PoolMmap::verify`) is timed separately so the
//! open number stays honest about what it skips.
//!
//! The report is machine readable (schema `tim-bench-pool-load/1`);
//! `bench_schema_check` validates it in CI, and the full-scale run —
//! which must show the v2 open+first-select beating the v1
//! restore+first-select by ≥ 5× at the ~1.3M-arc / 200k-set scale — is
//! checked in at the repo root so the trajectory is diffable across PRs.

use std::time::Instant;
use tim_core::parallel::generate_rr_sets;
use tim_coverage::greedy_max_cover_indexed;
use tim_diffusion::IndependentCascade;
use tim_engine::{PoolMeta, PoolMmap, RrPool};
use tim_graph::{gen, snapshot, weights, Graph};

struct Opts {
    quick: bool,
    out: String,
}

/// One benched scale.
struct ScaleReport {
    name: &'static str,
    nodes: usize,
    arcs: usize,
    sets: u64,
    members: usize,
    v1_bytes: u64,
    v2_bytes: u64,
    v1_load_ms: f64,
    v1_restore_plus_select_ms: f64,
    v2_open_ms: f64,
    v2_verify_ms: f64,
    v2_open_plus_select_ms: f64,
    speedup: f64,
    answers_match: bool,
    provenance_match: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_10.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = it.next().expect("--out requires a value"),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Median of `runs` timed executions of `f`, in milliseconds.
fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], last.unwrap())
}

const SEED: u64 = 0xB7;
const K: usize = 10;

fn run_scale(
    name: &'static str,
    mut graph: Graph,
    weigh: impl FnOnce(&mut Graph),
    theta: u64,
    dir: &std::path::Path,
) -> ScaleReport {
    weigh(&mut graph);
    let graph_checksum = snapshot::graph_checksum(&graph);

    // One real pool: the exact RR sets the sampler draws for this graph,
    // at a pinned θ so the two formats serialize identical content.
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (sets, _) = generate_rr_sets(&graph, &IndependentCascade, theta, SEED, threads);
    let members = sets.total_members();
    let pool = RrPool {
        meta: PoolMeta {
            graph_checksum,
            model: "ic".into(),
            epsilon: 0.25,
            ell: 1.0,
            seed: SEED,
            k_max: K as u32,
            theta,
            select_seed: tim_core::select_stream_seed(SEED),
        },
        sets,
    };
    let v1_path = dir.join(format!("{name}.v1.timp"));
    let v2_path = dir.join(format!("{name}.v2.timp"));
    pool.save(&v1_path).expect("write v1");
    pool.save_v2(&v2_path).expect("write v2");
    let v1_bytes = std::fs::metadata(&v1_path).map(|m| m.len()).unwrap_or(0);
    let v2_bytes = std::fs::metadata(&v2_path).map(|m| m.len()).unwrap_or(0);

    // v1 restore: full read + checksum + per-set decode onto the heap.
    // Median of 3 over a warm page cache — the same cache the mmap path
    // gets, so the comparison is file-format work, not disk speed.
    let (v1_load_ms, _) = median_ms(3, || RrPool::load(&v1_path).expect("v1"));

    // …then answer the first selection: the full-pool greedy the engine's
    // `select_fast` runs. Greedy needs the inverted index, which a v1
    // restore must rebuild (O(members)) before the first answer — that
    // cost lands here. (The engine's sampling-plan replay is identical
    // work on either backing and is deliberately outside the clock.)
    let (v1_restore_plus_select_ms, heap_seeds) = median_ms(3, || {
        let mut loaded = RrPool::load(&v1_path).expect("v1");
        loaded.sets.ensure_inverted_index();
        greedy_max_cover_indexed(&loaded.sets, K).seeds
    });
    let v1_meta = RrPool::load(&v1_path).expect("v1").meta;

    // v2 cold start: map + validate the layout (no per-member work), then
    // greedy straight over the mapped posting lists — the inverted index
    // is read from the file, never rebuilt — faulting pages in on demand.
    // A fresh mapping per run keeps the "open" honest.
    let (v2_open_ms, _) = median_ms(3, || PoolMmap::open(&v2_path).expect("open v2"));
    let (v2_open_plus_select_ms, mapped_seeds) = median_ms(3, || {
        let view = PoolMmap::open(&v2_path).expect("open v2");
        greedy_max_cover_indexed(view.sets().as_ref(), K).seeds
    });

    // The deferred integrity scan (`--mmap-pools` runs it once per
    // restore before serving): one sequential FNV pass over every
    // section, doubling as prefault.
    let mapped = PoolMmap::open(&v2_path).expect("open v2");
    let (v2_verify_ms, _) = median_ms(3, || mapped.verify().expect("verify v2"));
    let provenance_match = *mapped.meta() == v1_meta;

    ScaleReport {
        name,
        nodes: graph.n(),
        arcs: graph.m(),
        sets: theta,
        members,
        v1_bytes,
        v2_bytes,
        v1_load_ms,
        v1_restore_plus_select_ms,
        v2_open_ms,
        v2_verify_ms,
        v2_open_plus_select_ms,
        speedup: v1_restore_plus_select_ms / v2_open_plus_select_ms.max(1e-9),
        answers_match: heap_seeds == mapped_seeds,
        provenance_match,
    }
}

fn emit_json(quick: bool, scales: &[ScaleReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tim-bench-pool-load/1\",\n");
    out.push_str("  \"bench\": \"pool_load\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, s) in scales.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"arcs\": {}, \
             \"sets\": {}, \"members\": {}, \
             \"v1_bytes\": {}, \"v2_bytes\": {}, \
             \"v1_load_ms\": {:.3}, \"v1_restore_plus_select_ms\": {:.3}, \
             \"v2_open_ms\": {:.3}, \"v2_verify_ms\": {:.3}, \
             \"v2_open_plus_select_ms\": {:.3}, \"speedup\": {:.1}, \
             \"answers_match\": {}, \"provenance_match\": {}}}{}\n",
            s.name,
            s.nodes,
            s.arcs,
            s.sets,
            s.members,
            s.v1_bytes,
            s.v2_bytes,
            s.v1_load_ms,
            s.v1_restore_plus_select_ms,
            s.v2_open_ms,
            s.v2_verify_ms,
            s.v2_open_plus_select_ms,
            s.speedup,
            s.answers_match,
            s.provenance_match,
            if i + 1 < scales.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = parse_opts();
    let dir = std::env::temp_dir().join(format!("tim_pool_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let mut scales = Vec::new();

    // The kick-tires graph: the same shape scripts/kick-tires.sh drills,
    // under the paper's weighted-cascade arc weights.
    eprintln!("pool_load: kick_tires scale");
    let small = gen::barabasi_albert(2_000, 4, 0.0, 1);
    scales.push(run_scale(
        "kick_tires",
        small,
        weights::assign_weighted_cascade,
        20_000,
        &dir,
    ));

    if !opts.quick {
        // ~1.3M arcs / 200k sets: the scale the acceptance bar is set
        // at. Uniform-p IC near the percolation threshold (in-degree ≈ 8,
        // p = 0.13; the lattice clustering keeps it subcritical) — the
        // classic IC benchmark
        // setting, and it produces the wide RR sets the out-of-core
        // format exists for (~10× denser than weighted cascade on the
        // same arc budget, where sets collapse to a couple of members).
        eprintln!("pool_load: paper_1m scale (~1.3M arcs, 200k sets)");
        let big = gen::watts_strogatz(160_000, 4, 0.1, 2);
        scales.push(run_scale(
            "paper_1m",
            big,
            |g| weights::assign_constant(g, 0.13),
            200_000,
            &dir,
        ));
    }

    for s in &scales {
        eprintln!(
            "  {:<10}  {:>7} sets/{:>9} members  v1 load {:>9.3} ms, +select {:>9.3} ms \
             | v2 open {:>7.3} ms, +select {:>8.3} ms ({:.1}x), verify {:>7.3} ms  ok={}",
            s.name,
            s.sets,
            s.members,
            s.v1_load_ms,
            s.v1_restore_plus_select_ms,
            s.v2_open_ms,
            s.v2_open_plus_select_ms,
            s.speedup,
            s.v2_verify_ms,
            s.answers_match && s.provenance_match,
        );
    }

    let json = emit_json(opts.quick, &scales);
    // Self-check the emitter against our own parser before writing: a
    // malformed report should fail here, not in CI.
    tim_bench::json::parse(&json).expect("emitted JSON must parse");
    std::fs::write(&opts.out, &json).expect("write report");
    eprintln!("wrote {}", opts.out);
    std::fs::remove_dir_all(&dir).ok();

    if scales
        .iter()
        .any(|s| !s.answers_match || !s.provenance_match)
    {
        eprintln!("error: mmap answers or provenance diverged from the heap path — see report");
        std::process::exit(1);
    }
}
