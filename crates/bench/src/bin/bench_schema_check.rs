//! Validates a bench report against its schema, dispatching on the
//! report's `schema` string: `tim-bench-fanin/1` (`BENCH_6.json`, the
//! `c10k_fanin` bin), `tim-bench-graph-load/1` (`BENCH_7.json`, the
//! `graph_load` bin), `tim-bench-select/1` (`BENCH_8.json`, the
//! original `select_scaling` shape), `tim-bench-select/2`
//! (`BENCH_9.json`, the per-strategy shape with `evals_per_round` work
//! counters and the lazy-vs-eager evaluation-ratio bar), or
//! `tim-bench-pool-load/1` (`BENCH_10.json`, the `pool_load` bin: v1
//! heap restore vs v2 mmap open of spilled RR-set pools).
//!
//! ```text
//! cargo run -p tim_bench --bin bench_schema_check -- <report.json>
//! ```
//!
//! CI runs this on the quick-mode artifacts so a refactor that silently
//! breaks a report shape (or a run whose transcripts/answers diverged)
//! fails the build instead of producing an unreadable trajectory point.
//! Full-mode graph-load reports additionally enforce the acceptance bar:
//! v2 open+first-query must beat the v1 full parse by ≥ 5× at the
//! million-arc scale.

use tim_bench::json::{parse, Value};

fn fail(msg: &str) -> ! {
    eprintln!("bench_schema_check: {msg}");
    std::process::exit(1);
}

fn require_f64(mode: &Value, key: &str, what: &str) -> f64 {
    mode.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail(&format!("{what}: missing numeric '{key}'")))
}

fn check_mode(mode: &Value, name: &str) {
    let what = format!("mode '{name}'");
    for key in ["threads", "sessions", "max_in_flight"] {
        let v = require_f64(mode, key, &what);
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "{what}: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    for key in ["wall_ms", "sessions_per_sec"] {
        if require_f64(mode, key, &what) <= 0.0 {
            fail(&format!("{what}: '{key}' must be positive"));
        }
    }
    let p50 = require_f64(mode, "p50_ms", &what);
    let p99 = require_f64(mode, "p99_ms", &what);
    if p50 < 0.0 || p99 < p50 {
        fail(&format!(
            "{what}: need 0 <= p50_ms <= p99_ms, got {p50}/{p99}"
        ));
    }
    // First-byte percentiles (added after BENCH_6.json was first checked
    // in): optional for old reports, but when present they must be
    // ordered and cannot exceed the matching session-lifetime numbers.
    if mode.get("first_byte_p50_ms").is_some() || mode.get("first_byte_p99_ms").is_some() {
        let fb50 = require_f64(mode, "first_byte_p50_ms", &what);
        let fb99 = require_f64(mode, "first_byte_p99_ms", &what);
        if fb50 < 0.0 || fb99 < fb50 {
            fail(&format!(
                "{what}: need 0 <= first_byte_p50_ms <= first_byte_p99_ms, got {fb50}/{fb99}"
            ));
        }
        if fb50 > p50 || fb99 > p99 {
            fail(&format!(
                "{what}: first-byte percentiles exceed session-lifetime percentiles \
                 ({fb50}/{fb99} vs {p50}/{p99})"
            ));
        }
    }
    if mode.get("transcripts_ok").and_then(Value::as_bool) != Some(true) {
        fail(&format!(
            "{what}: transcripts_ok must be true — the run diverged"
        ));
    }
}

/// `tim-bench-fanin/…`: the c10k fan-in report shape.
fn check_fanin(doc: &Value, path: &str, schema: &str) {
    let modes = doc
        .get("modes")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'modes' array"));
    if modes.is_empty() {
        fail("'modes' is empty");
    }
    for want in ["event_loop", "thread_pool"] {
        let Some(mode) = modes
            .iter()
            .find(|m| m.get("mode").and_then(Value::as_str) == Some(want))
        else {
            fail(&format!("missing required mode '{want}'"));
        };
        check_mode(mode, want);
    }
    println!("{path}: ok ({schema}, {} modes)", modes.len());
}

/// `tim-bench-graph-load/…`: the v1-parse vs v2-mmap report shape.
fn check_graph_load(doc: &Value, path: &str, schema: &str) {
    let quick = doc
        .get("quick")
        .and_then(Value::as_bool)
        .unwrap_or_else(|| fail("missing boolean 'quick'"));
    let scales = doc
        .get("scales")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'scales' array"));
    if scales.is_empty() {
        fail("'scales' is empty");
    }
    for scale in scales {
        let name = scale
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail("scale: missing 'name' string"));
        let what = format!("scale '{name}'");
        for key in ["nodes", "arcs", "v1_bytes", "v2_bytes"] {
            let v = require_f64(scale, key, &what);
            if v < 1.0 || v.fract() != 0.0 {
                fail(&format!(
                    "{what}: '{key}' must be a positive integer, got {v}"
                ));
            }
        }
        for key in [
            "v1_parse_ms",
            "v2_open_ms",
            "v2_open_plus_query_ms",
            "warm_query_ms",
        ] {
            if require_f64(scale, key, &what) <= 0.0 {
                fail(&format!("{what}: '{key}' must be positive"));
            }
        }
        if require_f64(scale, "first_query_ms", &what) < 0.0 {
            fail(&format!("{what}: 'first_query_ms' must be non-negative"));
        }
        if require_f64(scale, "speedup", &what) <= 0.0 {
            fail(&format!("{what}: 'speedup' must be positive"));
        }
        for key in ["answers_match", "checksums_match"] {
            if scale.get(key).and_then(Value::as_bool) != Some(true) {
                fail(&format!("{what}: '{key}' must be true — the run diverged"));
            }
        }
    }
    // Full-mode runs carry the acceptance bar: at the ~million-arc scale,
    // v2 open+first-query must beat the v1 full parse by ≥ 5×.
    if !quick {
        let Some(big) = scales
            .iter()
            .find(|s| require_f64(s, "arcs", "scale") >= 1_000_000.0)
        else {
            fail("full-mode report has no million-arc scale");
        };
        let speedup = require_f64(big, "speedup", "million-arc scale");
        if speedup < 5.0 {
            fail(&format!(
                "million-arc scale: v2 open+first-query is only {speedup:.1}x \
                 faster than the v1 parse (need >= 5x)"
            ));
        }
    }
    println!("{path}: ok ({schema}, {} scales)", scales.len());
}

/// `tim-bench-pool-load/…`: the v1-restore vs v2-mmap pool report
/// shape. Same bones as `check_graph_load`, pool-flavored fields: the
/// restore-to-first-answer pair (`v1_restore_plus_select_ms` vs
/// `v2_open_plus_select_ms`) carries the acceptance bar, and every
/// scale must have re-verified its seed sets (`answers_match`) and
/// provenance header (`provenance_match`) across backings.
fn check_pool_load(doc: &Value, path: &str, schema: &str) {
    let quick = doc
        .get("quick")
        .and_then(Value::as_bool)
        .unwrap_or_else(|| fail("missing boolean 'quick'"));
    let scales = doc
        .get("scales")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'scales' array"));
    if scales.is_empty() {
        fail("'scales' is empty");
    }
    for scale in scales {
        let name = scale
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail("scale: missing 'name' string"));
        let what = format!("scale '{name}'");
        for key in ["nodes", "arcs", "sets", "members", "v1_bytes", "v2_bytes"] {
            let v = require_f64(scale, key, &what);
            if v < 1.0 || v.fract() != 0.0 {
                fail(&format!(
                    "{what}: '{key}' must be a positive integer, got {v}"
                ));
            }
        }
        for key in [
            "v1_load_ms",
            "v1_restore_plus_select_ms",
            "v2_open_ms",
            "v2_verify_ms",
            "v2_open_plus_select_ms",
            "speedup",
        ] {
            if require_f64(scale, key, &what) <= 0.0 {
                fail(&format!("{what}: '{key}' must be positive"));
            }
        }
        // The composite timings contain their components.
        if require_f64(scale, "v1_restore_plus_select_ms", &what)
            < require_f64(scale, "v1_load_ms", &what)
        {
            fail(&format!(
                "{what}: v1 restore+select is faster than the v1 load it contains"
            ));
        }
        for key in ["answers_match", "provenance_match"] {
            if scale.get(key).and_then(Value::as_bool) != Some(true) {
                fail(&format!("{what}: '{key}' must be true — the run diverged"));
            }
        }
    }
    // Full-mode runs carry the acceptance bar: at the ~1.3M-arc /
    // 200k-set scale, v2 open+first-select must beat the v1
    // restore+first-select by ≥ 5×.
    if !quick {
        let Some(big) = scales.iter().find(|s| {
            require_f64(s, "arcs", "scale") >= 1_000_000.0
                && require_f64(s, "sets", "scale") >= 200_000.0
        }) else {
            fail("full-mode report has no million-arc / 200k-set scale");
        };
        let speedup = require_f64(big, "speedup", "million-arc scale");
        if speedup < 5.0 {
            fail(&format!(
                "million-arc scale: v2 open+first-select is only {speedup:.1}x \
                 faster than the v1 restore+first-select (need >= 5x)"
            ));
        }
    }
    println!("{path}: ok ({schema}, {} scales)", scales.len());
}

/// `tim-bench-select/…`: the sharded-selection scaling report shape.
fn check_select(doc: &Value, path: &str, schema: &str) {
    let graph = doc
        .get("graph")
        .unwrap_or_else(|| fail("missing 'graph' object"));
    for key in ["nodes", "arcs"] {
        let v = require_f64(graph, key, "graph");
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "graph: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    for key in ["theta", "k"] {
        let v = require_f64(doc, key, "report");
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "report: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    let serial_ms = require_f64(doc, "serial_ms", "report");
    if serial_ms <= 0.0 {
        fail("report: 'serial_ms' must be positive");
    }
    let threads = doc
        .get("threads")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'threads' array"));
    // The acceptance bar names 1/2/4/8 threads; every entry must have
    // re-verified byte-identity against the serial baseline.
    for want in [1.0, 2.0, 4.0, 8.0] {
        let Some(entry) = threads
            .iter()
            .find(|t| t.get("threads").and_then(Value::as_f64) == Some(want))
        else {
            fail(&format!("missing measurement for threads={want}"));
        };
        let what = format!("threads={want}");
        if require_f64(entry, "select_ms", &what) <= 0.0 {
            fail(&format!("{what}: 'select_ms' must be positive"));
        }
        if require_f64(entry, "speedup", &what) <= 0.0 {
            fail(&format!("{what}: 'speedup' must be positive"));
        }
        if entry.get("identical").and_then(Value::as_bool) != Some(true) {
            fail(&format!(
                "{what}: 'identical' must be true — sharded selection diverged"
            ));
        }
    }
    println!("{path}: ok ({schema}, {} thread counts)", threads.len());
}

/// Shared by both strategy blocks of a `tim-bench-select/2` entry.
fn check_strategy_block(entry: &Value, what: &str) -> f64 {
    if require_f64(entry, "select_ms", what) <= 0.0 {
        fail(&format!("{what}: 'select_ms' must be positive"));
    }
    if require_f64(entry, "speedup", what) <= 0.0 {
        fail(&format!("{what}: 'speedup' must be positive"));
    }
    for key in ["repushes", "dirty"] {
        let v = require_f64(entry, key, what);
        if v < 0.0 || v.fract() != 0.0 {
            fail(&format!(
                "{what}: '{key}' must be a non-negative integer, got {v}"
            ));
        }
    }
    if entry.get("identical").and_then(Value::as_bool) != Some(true) {
        fail(&format!(
            "{what}: 'identical' must be true — sharded selection diverged"
        ));
    }
    let epr = require_f64(entry, "evals_per_round", what);
    if epr <= 0.0 {
        fail(&format!("{what}: 'evals_per_round' must be positive"));
    }
    epr
}

/// `tim-bench-select/2`: the per-strategy shape. Beyond the v1 checks,
/// every thread count carries an `eager` and a `lazy` block with work
/// counters, and full-mode reports must meet the lazy acceptance bar:
/// ≥ 5× fewer candidate evaluations per round wherever real sharding
/// happens (t ≥ 2 — t = 1 delegates to the serial solver under either
/// strategy, so its ratio is 1).
fn check_select_v2(doc: &Value, path: &str, schema: &str) {
    let quick = doc
        .get("quick")
        .and_then(Value::as_bool)
        .unwrap_or_else(|| fail("missing boolean 'quick'"));
    let graph = doc
        .get("graph")
        .unwrap_or_else(|| fail("missing 'graph' object"));
    for key in ["nodes", "arcs"] {
        let v = require_f64(graph, key, "graph");
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "graph: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    for key in ["theta", "k"] {
        let v = require_f64(doc, key, "report");
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "report: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    let serial = doc
        .get("serial")
        .unwrap_or_else(|| fail("missing 'serial' object"));
    if require_f64(serial, "select_ms", "serial") <= 0.0 {
        fail("serial: 'select_ms' must be positive");
    }
    if require_f64(serial, "evals_per_round", "serial") <= 0.0 {
        fail("serial: 'evals_per_round' must be positive");
    }
    let threads = doc
        .get("threads")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'threads' array"));
    for want in [1.0, 2.0, 4.0, 8.0] {
        let Some(entry) = threads
            .iter()
            .find(|t| t.get("threads").and_then(Value::as_f64) == Some(want))
        else {
            fail(&format!("missing measurement for threads={want}"));
        };
        let eager = entry
            .get("eager")
            .unwrap_or_else(|| fail(&format!("threads={want}: missing 'eager' block")));
        let lazy = entry
            .get("lazy")
            .unwrap_or_else(|| fail(&format!("threads={want}: missing 'lazy' block")));
        let eager_epr = check_strategy_block(eager, &format!("threads={want} eager"));
        let lazy_epr = check_strategy_block(lazy, &format!("threads={want} lazy"));
        let ratio = require_f64(entry, "lazy_eval_ratio", &format!("threads={want}"));
        // The recorded ratio must agree with the blocks it summarizes
        // (loose tolerance: the report rounds to one decimal).
        let derived = eager_epr / lazy_epr.max(1e-9);
        if (ratio - derived).abs() > 0.05 * derived.max(1.0) + 0.1 {
            fail(&format!(
                "threads={want}: 'lazy_eval_ratio' {ratio} does not match \
                 eager/lazy evals_per_round ({derived:.1})"
            ));
        }
        if !quick && want >= 2.0 && ratio < 5.0 {
            fail(&format!(
                "threads={want}: lazy strategy evaluates only {ratio:.1}x fewer \
                 candidates per round than eager (need >= 5x at full scale)"
            ));
        }
    }
    println!("{path}: ok ({schema}, {} thread counts)", threads.len());
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: bench_schema_check <report.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{path}: not valid JSON: {e}")));

    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("missing 'schema' string"))
        .to_string();
    if schema.starts_with("tim-bench-fanin/") {
        check_fanin(&doc, &path, &schema);
    } else if schema.starts_with("tim-bench-graph-load/") {
        check_graph_load(&doc, &path, &schema);
    } else if schema == "tim-bench-select/1" {
        check_select(&doc, &path, &schema);
    } else if schema == "tim-bench-select/2" {
        check_select_v2(&doc, &path, &schema);
    } else if schema.starts_with("tim-bench-pool-load/") {
        check_pool_load(&doc, &path, &schema);
    } else {
        fail(&format!("unknown schema '{schema}'"));
    }
}
