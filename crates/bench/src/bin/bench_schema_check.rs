//! Validates a `c10k_fanin` report (`BENCH_6.json`) against the
//! `tim-bench-fanin/1` schema.
//!
//! ```text
//! cargo run -p tim_bench --bin bench_schema_check -- <report.json>
//! ```
//!
//! CI runs this on the quick-mode artifact so a refactor that silently
//! breaks the report shape (or a run whose transcripts diverged) fails
//! the build instead of producing an unreadable trajectory point.

use tim_bench::json::{parse, Value};

fn fail(msg: &str) -> ! {
    eprintln!("bench_schema_check: {msg}");
    std::process::exit(1);
}

fn require_f64(mode: &Value, key: &str, what: &str) -> f64 {
    mode.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail(&format!("{what}: missing numeric '{key}'")))
}

fn check_mode(mode: &Value, name: &str) {
    let what = format!("mode '{name}'");
    for key in ["threads", "sessions", "max_in_flight"] {
        let v = require_f64(mode, key, &what);
        if v < 1.0 || v.fract() != 0.0 {
            fail(&format!(
                "{what}: '{key}' must be a positive integer, got {v}"
            ));
        }
    }
    for key in ["wall_ms", "sessions_per_sec"] {
        if require_f64(mode, key, &what) <= 0.0 {
            fail(&format!("{what}: '{key}' must be positive"));
        }
    }
    let p50 = require_f64(mode, "p50_ms", &what);
    let p99 = require_f64(mode, "p99_ms", &what);
    if p50 < 0.0 || p99 < p50 {
        fail(&format!(
            "{what}: need 0 <= p50_ms <= p99_ms, got {p50}/{p99}"
        ));
    }
    if mode.get("transcripts_ok").and_then(Value::as_bool) != Some(true) {
        fail(&format!(
            "{what}: transcripts_ok must be true — the run diverged"
        ));
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: bench_schema_check <report.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{path}: not valid JSON: {e}")));

    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("missing 'schema' string"));
    if !schema.starts_with("tim-bench-fanin/") {
        fail(&format!("unknown schema '{schema}'"));
    }
    let modes = doc
        .get("modes")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing 'modes' array"));
    if modes.is_empty() {
        fail("'modes' is empty");
    }
    for want in ["event_loop", "thread_pool"] {
        let Some(mode) = modes
            .iter()
            .find(|m| m.get("mode").and_then(Value::as_str) == Some(want))
        else {
            fail(&format!("missing required mode '{want}'"));
        };
        check_mode(mode, want);
    }
    println!("{path}: ok ({schema}, {} modes)", modes.len());
}
