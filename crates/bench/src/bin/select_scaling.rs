//! Sharded-selection scaling benchmark: serial vs sharded greedy
//! max-coverage over one RR-set pool, at 1/2/4/8 worker threads.
//!
//! ```text
//! cargo run --release -p tim_bench --bin select_scaling -- [flags]
//!
//! flags:
//!   --quick        kick-tires scale only (CI artifact)
//!   --out <path>   where to write the JSON report (default BENCH_8.json)
//! ```
//!
//! The harness builds the paper-scale weighted graph (~1.3M arcs in full
//! mode), samples one deterministic RR-set pool through the production
//! sharded generator, and then times seed selection over that *same*
//! pool: the serial `greedy_max_cover_indexed` baseline against
//! `greedy_max_cover_sharded_indexed` at each thread count. Every
//! sharded result is compared against the serial `CoverResult` — seeds,
//! marginals, and coverage must be identical, or the run fails loudly
//! (`identical`). A thread count is allowed to change latency and
//! nothing else; that is the determinism contract the differential
//! suite pins, and this bench re-checks it at measurement scale.
//!
//! The report is machine readable (schema `tim-bench-select/1`);
//! `bench_schema_check` validates it in CI and the full-scale run is
//! checked in at the repo root so the trajectory is diffable across PRs.
//! Speedups are hardware-relative: on a single-core runner the sharded
//! solver pays its barrier overhead without any parallelism to show for
//! it, so the schema only enforces shape and identity, not a speedup
//! floor.

use std::time::Instant;
use tim_core::parallel::generate_rr_sets;
use tim_coverage::sharded::greedy_max_cover_sharded_indexed;
use tim_coverage::{greedy_max_cover_indexed, CoverResult, SetCollection};
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, weights};

/// The thread counts the acceptance bar names.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Opts {
    quick: bool,
    out: String,
}

/// One thread count's measurement.
struct ThreadReport {
    threads: usize,
    select_ms: f64,
    speedup: f64,
    identical: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_8.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = it.next().expect("--out requires a value"),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Median of `runs` timed executions of `f`, in milliseconds.
fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], last.unwrap())
}

fn same_answer(a: &CoverResult, b: &CoverResult) -> bool {
    a.seeds == b.seeds && a.marginal == b.marginal && a.covered == b.covered
}

fn emit_json(
    quick: bool,
    nodes: usize,
    arcs: usize,
    theta: u64,
    k: usize,
    serial_ms: f64,
    threads: &[ThreadReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tim-bench-select/1\",\n");
    out.push_str("  \"bench\": \"select_scaling\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"graph\": {{\"kind\": \"barabasi_albert\", \"nodes\": {nodes}, \"arcs\": {arcs}}},\n"
    ));
    out.push_str(&format!("  \"theta\": {theta},\n"));
    out.push_str(&format!("  \"k\": {k},\n"));
    out.push_str(&format!("  \"serial_ms\": {serial_ms:.3},\n"));
    out.push_str("  \"threads\": [\n");
    for (i, t) in threads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"select_ms\": {:.3}, \"speedup\": {:.2}, \
             \"identical\": {}}}{}\n",
            t.threads,
            t.select_ms,
            t.speedup,
            t.identical,
            if i + 1 < threads.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = parse_opts();

    // Quick mode drills the kick-tires shape; full mode is the paper's
    // ~1.3M-arc scale (same generator call as graph_load's acceptance
    // scale, so the two trajectories describe one graph).
    let (mut graph, theta, k) = if opts.quick {
        (gen::barabasi_albert(2_000, 4, 0.0, 1), 20_000u64, 50usize)
    } else {
        (
            gen::barabasi_albert(160_000, 8, 0.0, 2),
            200_000u64,
            50usize,
        )
    };
    weights::assign_weighted_cascade(&mut graph);
    let (nodes, arcs) = (graph.n(), graph.m());
    eprintln!(
        "select_scaling: {nodes} nodes, {arcs} arcs ({}), sampling θ={theta}",
        if opts.quick { "quick" } else { "full" }
    );

    // One pool, sampled once through the production sharded generator —
    // every timed selection below reads this same immutable collection.
    let (mut pool, _) = generate_rr_sets(&graph, &IndependentCascade, theta, 0xB8, 1);
    pool.ensure_inverted_index();
    let pool: SetCollection = pool;

    let runs = if opts.quick { 5 } else { 3 };
    let (serial_ms, serial) = median_ms(runs, || greedy_max_cover_indexed(&pool, k));
    eprintln!(
        "  serial:     {serial_ms:>9.3} ms  (k={k}, coverage {})",
        serial.covered
    );

    let mut threads = Vec::new();
    for t in THREAD_COUNTS {
        let (select_ms, result) = median_ms(runs, || greedy_max_cover_sharded_indexed(&pool, k, t));
        let identical = same_answer(&result, &serial);
        eprintln!(
            "  sharded x{t}: {select_ms:>9.3} ms  ({:.2}x vs serial)  identical={identical}",
            serial_ms / select_ms.max(1e-9)
        );
        threads.push(ThreadReport {
            threads: t,
            select_ms,
            speedup: serial_ms / select_ms.max(1e-9),
            identical,
        });
    }

    let json = emit_json(opts.quick, nodes, arcs, theta, k, serial_ms, &threads);
    // Self-check the emitter against our own parser before writing: a
    // malformed report should fail here, not in CI.
    tim_bench::json::parse(&json).expect("emitted JSON must parse");
    std::fs::write(&opts.out, &json).expect("write report");
    eprintln!("wrote {}", opts.out);

    if threads.iter().any(|t| !t.identical) {
        eprintln!("error: sharded selection diverged from serial — see report");
        std::process::exit(1);
    }
}
