//! Sharded-selection scaling benchmark: serial lazy greedy vs the
//! sharded solver under both worker strategies (eager scan and lazy
//! CELF-style heaps), at 1/2/4/8 worker threads over one RR-set pool.
//!
//! ```text
//! cargo run --release -p tim_bench --bin select_scaling -- [flags]
//!
//! flags:
//!   --quick        kick-tires scale only (CI artifact)
//!   --out <path>   where to write the JSON report (default BENCH_9.json)
//! ```
//!
//! The harness builds the paper-scale weighted graph (~1.3M arcs in full
//! mode), samples one deterministic RR-set pool through the production
//! sharded generator, and then times seed selection over that *same*
//! pool: the serial `greedy_max_cover_indexed` baseline against
//! `greedy_max_cover_sharded_indexed_stats` at each thread count under
//! each strategy. Every sharded result is compared against the serial
//! `CoverResult` — seeds, marginals, and coverage must be identical, or
//! the run fails loudly (`identical`). Thread count and strategy are
//! allowed to change latency and evaluation counts and nothing else;
//! that is the determinism contract the differential suite pins, and
//! this bench re-checks it at measurement scale.
//!
//! Beyond latency, the report records *work*: `evals_per_round` is how
//! many candidate gains each configuration inspected per greedy round
//! ([`EvalStats`]), which is hardware-independent — the lazy strategy's
//! acceptance bar (≥ 5× fewer evaluations than eager at the full scale)
//! holds on any machine, single-core CI runners included. `threads = 1`
//! delegates to the serial solver under either strategy, so its two
//! blocks coincide and its `lazy_eval_ratio` is 1.
//!
//! The report is machine readable (schema `tim-bench-select/2`);
//! `bench_schema_check` validates it in CI (older `tim-bench-select/1`
//! reports like the checked-in BENCH_8.json stay valid) and the
//! full-scale run is checked in at the repo root so the trajectory is
//! diffable across PRs. Speedups are hardware-relative, so the schema
//! enforces shape, identity, and the eval-ratio bar — not a speedup
//! floor.

use std::time::Instant;
use tim_core::parallel::generate_rr_sets;
use tim_coverage::sharded::greedy_max_cover_sharded_indexed_stats;
use tim_coverage::{
    greedy_max_cover_indexed_stats, CoverResult, EvalStats, SelectStrategy, SetCollection,
};
use tim_diffusion::IndependentCascade;
use tim_graph::{gen, weights};

/// The thread counts the acceptance bar names.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Opts {
    quick: bool,
    out: String,
}

/// One (strategy, thread count) measurement.
struct StrategyReport {
    select_ms: f64,
    speedup: f64,
    stats: EvalStats,
    identical: bool,
}

/// One thread count's pair of strategy measurements.
struct ThreadReport {
    threads: usize,
    eager: StrategyReport,
    lazy: StrategyReport,
}

impl ThreadReport {
    /// How many times fewer candidate evaluations the lazy strategy
    /// needed per round — the hardware-independent win.
    fn lazy_eval_ratio(&self) -> f64 {
        self.eager.stats.evals_per_round() / self.lazy.stats.evals_per_round().max(1e-9)
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_9.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = it.next().expect("--out requires a value"),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Median of `runs` timed executions of `f`, in milliseconds.
fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let v = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], last.unwrap())
}

fn same_answer(a: &CoverResult, b: &CoverResult) -> bool {
    a.seeds == b.seeds && a.marginal == b.marginal && a.covered == b.covered
}

fn strategy_json(s: &StrategyReport) -> String {
    format!(
        "{{\"select_ms\": {:.3}, \"speedup\": {:.2}, \"evals_per_round\": {:.1}, \
         \"repushes\": {}, \"dirty\": {}, \"identical\": {}}}",
        s.select_ms,
        s.speedup,
        s.stats.evals_per_round(),
        s.stats.repushes,
        s.stats.dirty,
        s.identical,
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    quick: bool,
    nodes: usize,
    arcs: usize,
    theta: u64,
    k: usize,
    serial_ms: f64,
    serial_stats: &EvalStats,
    threads: &[ThreadReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tim-bench-select/2\",\n");
    out.push_str("  \"bench\": \"select_scaling\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"graph\": {{\"kind\": \"barabasi_albert\", \"nodes\": {nodes}, \"arcs\": {arcs}}},\n"
    ));
    out.push_str(&format!("  \"theta\": {theta},\n"));
    out.push_str(&format!("  \"k\": {k},\n"));
    out.push_str(&format!(
        "  \"serial\": {{\"select_ms\": {:.3}, \"evals_per_round\": {:.1}, \"repushes\": {}}},\n",
        serial_ms,
        serial_stats.evals_per_round(),
        serial_stats.repushes,
    ));
    out.push_str("  \"threads\": [\n");
    for (i, t) in threads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {},\n     \"eager\": {},\n     \"lazy\": {},\n     \
             \"lazy_eval_ratio\": {:.1}}}{}\n",
            t.threads,
            strategy_json(&t.eager),
            strategy_json(&t.lazy),
            t.lazy_eval_ratio(),
            if i + 1 < threads.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = parse_opts();

    // Quick mode drills the kick-tires shape; full mode is the paper's
    // ~1.3M-arc scale (same generator call as graph_load's acceptance
    // scale, so the two trajectories describe one graph).
    let (mut graph, theta, k) = if opts.quick {
        (gen::barabasi_albert(2_000, 4, 0.0, 1), 20_000u64, 50usize)
    } else {
        (
            gen::barabasi_albert(160_000, 8, 0.0, 2),
            200_000u64,
            50usize,
        )
    };
    weights::assign_weighted_cascade(&mut graph);
    let (nodes, arcs) = (graph.n(), graph.m());
    eprintln!(
        "select_scaling: {nodes} nodes, {arcs} arcs ({}), sampling θ={theta}",
        if opts.quick { "quick" } else { "full" }
    );

    // One pool, sampled once through the production sharded generator —
    // every timed selection below reads this same immutable collection.
    let (mut pool, _) = generate_rr_sets(&graph, &IndependentCascade, theta, 0xB8, 1);
    pool.ensure_inverted_index();
    let pool: SetCollection = pool;

    let runs = if opts.quick { 5 } else { 3 };
    let (serial_ms, (serial, serial_stats)) =
        median_ms(runs, || greedy_max_cover_indexed_stats(&pool, k));
    eprintln!(
        "  serial:       {serial_ms:>9.3} ms  (k={k}, coverage {}, {:.1} evals/round)",
        serial.covered,
        serial_stats.evals_per_round()
    );

    let mut threads = Vec::new();
    for t in THREAD_COUNTS {
        let measure = |strategy: SelectStrategy| -> StrategyReport {
            let (select_ms, (result, stats)) = median_ms(runs, || {
                greedy_max_cover_sharded_indexed_stats(&pool, k, t, strategy)
            });
            let identical = same_answer(&result, &serial);
            eprintln!(
                "  {strategy:>5} x{t}:     {select_ms:>9.3} ms  ({:.2}x vs serial)  \
                 {:.1} evals/round  identical={identical}",
                serial_ms / select_ms.max(1e-9),
                stats.evals_per_round(),
            );
            StrategyReport {
                select_ms,
                speedup: serial_ms / select_ms.max(1e-9),
                stats,
                identical,
            }
        };
        let eager = measure(SelectStrategy::Eager);
        let lazy = measure(SelectStrategy::Lazy);
        threads.push(ThreadReport {
            threads: t,
            eager,
            lazy,
        });
    }

    let json = emit_json(
        opts.quick,
        nodes,
        arcs,
        theta,
        k,
        serial_ms,
        &serial_stats,
        &threads,
    );
    // Self-check the emitter against our own parser before writing: a
    // malformed report should fail here, not in CI.
    tim_bench::json::parse(&json).expect("emitted JSON must parse");
    std::fs::write(&opts.out, &json).expect("write report");
    eprintln!("wrote {}", opts.out);

    if threads
        .iter()
        .any(|t| !t.eager.identical || !t.lazy.identical)
    {
        eprintln!("error: sharded selection diverged from serial — see report");
        std::process::exit(1);
    }
    // The tentpole's acceptance bar, enforced at measurement scale: the
    // lazy strategy must evaluate ≥ 5× fewer candidates per round than
    // the eager scan wherever real sharding happens (t ≥ 2; t = 1
    // delegates to the serial solver under either strategy).
    if !opts.quick {
        for t in threads.iter().filter(|t| t.threads >= 2) {
            if t.lazy_eval_ratio() < 5.0 {
                eprintln!(
                    "error: lazy/eager eval ratio at t={} is only {:.1}x (need >= 5x)",
                    t.threads,
                    t.lazy_eval_ratio()
                );
                std::process::exit(1);
            }
        }
    }
}
