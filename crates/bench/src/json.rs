//! A minimal JSON reader for validating bench artifacts.
//!
//! The bench binaries emit machine-readable JSON (`BENCH_*.json`) that
//! CI validates before accepting a run. No serde in this environment, so
//! this is a small recursive-descent parser over the JSON grammar —
//! enough to load a bench report and assert on its shape. Numbers are
//! `f64` (bench metrics all are); strings support the standard escapes
//! plus BMP `\uXXXX`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (f64 covers every bench metric).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object's field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|c| *c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // BMP only — surrogate pairs don't occur in the
                        // ASCII reports this validates.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?,
                        );
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are sound).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf-8 input");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_report_shape() {
        let doc = r#"{
            "schema": "tim-bench-fanin/1",
            "quick": false,
            "modes": [
                {"mode": "event_loop", "sessions": 10000, "p50_ms": 1.25},
                {"mode": "thread_pool", "sessions": 10000, "p50_ms": 3.5}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("tim-bench-fanin/1"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        let modes = v.get("modes").unwrap().as_arr().unwrap();
        assert_eq!(modes.len(), 2);
        assert_eq!(modes[0].get("mode").unwrap().as_str(), Some("event_loop"));
        assert_eq!(modes[1].get("p50_ms").unwrap().as_f64(), Some(3.5));
    }

    #[test]
    fn parses_scalars_escapes_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse(r#""a\n\"b\"A""#).unwrap(),
            Value::Str("a\n\"b\"A".into())
        );
        assert_eq!(
            parse("[1, [2, {}], []]").unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Arr(vec![Value::Num(2.0), Value::Obj(BTreeMap::new())]),
                Value::Arr(vec![]),
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("troo").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }
}
