//! Shared plumbing for the experiment harness (`experiments` binary) and
//! the criterion benches.
//!
//! Every figure/table of the paper maps to one harness subcommand; see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for recorded runs.

pub mod json;

use tim_diffusion::{IndependentCascade, LinearThreshold};
use tim_eval::Dataset;
use tim_graph::{weights, Graph};

/// Which propagation model an experiment runs under (§7.1 settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// IC with weighted-cascade probabilities `1/indeg`.
    Ic,
    /// LT with random per-node-normalised weights.
    Lt,
}

impl Model {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Ic => "IC",
            Model::Lt => "LT",
        }
    }

    /// The IC instance (panics if this is the LT variant) — helper for
    /// monomorphised call sites.
    pub fn ic(&self) -> IndependentCascade {
        assert_eq!(*self, Model::Ic);
        IndependentCascade
    }

    /// The LT instance (panics if this is the IC variant).
    pub fn lt(&self) -> LinearThreshold {
        assert_eq!(*self, Model::Lt);
        LinearThreshold
    }
}

/// Builds a dataset stand-in and assigns the §7.1 weights for `model`.
///
/// `scale` of `None` uses the dataset's default scale. The weight seed is
/// fixed so every experiment sees the same weighted graph.
pub fn prepare(dataset: Dataset, scale: Option<f64>, model: Model) -> Graph {
    let scale = scale.unwrap_or_else(|| dataset.default_scale());
    let mut g = dataset.build(scale, 0xDA7A ^ dataset.paper_n());
    match model {
        Model::Ic => weights::assign_weighted_cascade(&mut g),
        Model::Lt => weights::assign_lt_normalized(&mut g, 0x17),
    }
    g
}

/// The paper's k sweep for most figures.
pub fn k_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 10, 50]
    } else {
        vec![1, 10, 20, 30, 40, 50]
    }
}

/// The paper's ε sweep for Figure 7.
pub fn eps_sweep(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.2, 0.4]
    } else {
        vec![0.1, 0.2, 0.3, 0.4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_assigns_model_weights() {
        let g = prepare(Dataset::NetHept, Some(0.05), Model::Ic);
        // WC weights: in-probabilities of any node with in-edges sum to 1.
        let v = (0..g.n() as u32).find(|&v| g.in_degree(v) > 0).unwrap();
        let sum: f64 = g.in_probabilities(v).iter().map(|&p| p as f64).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn prepare_is_deterministic() {
        let a = prepare(Dataset::Epinions, Some(0.02), Model::Lt);
        let b = prepare(Dataset::Epinions, Some(0.02), Model::Lt);
        assert_eq!(a.m(), b.m());
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(k_sweep(false), vec![1, 10, 20, 30, 40, 50]);
        assert_eq!(eps_sweep(false), vec![0.1, 0.2, 0.3, 0.4]);
        assert!(k_sweep(true).len() < 6);
    }

    #[test]
    fn model_names() {
        assert_eq!(Model::Ic.name(), "IC");
        assert_eq!(Model::Lt.name(), "LT");
    }
}
