//! Viral marketing: how many free samples should the campaign hand out?
//!
//! The paper's motivating application (§1): a company gives k individuals
//! free products hoping recommendations cascade. This example sweeps the
//! budget k on an Epinions-like trust network, showing (i) diminishing
//! returns — the submodularity that makes greedy near-optimal — and
//! (ii) how much better principled seed selection is than just paying the
//! most-followed accounts.
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use tim_influence::eval::{Dataset, Table};
use tim_influence::prelude::*;

fn main() {
    // Epinions-shaped trust network at 1/10 scale (7.6k users).
    let mut graph = Dataset::Epinions.build(0.1, 11);
    weights::assign_weighted_cascade(&mut graph);
    println!(
        "trust network: n = {}, m = {} (Epinions stand-in, scale 0.1)\n",
        graph.n(),
        graph.m()
    );

    let estimator = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(3);
    let mut table = Table::new([
        "budget k",
        "TIM+ adopters",
        "marginal/seed",
        "HighDegree adopters",
        "TIM+ advantage",
    ]);

    let mut prev_spread = 0.0;
    let mut prev_k = 0usize;
    for k in [1usize, 5, 10, 20, 40] {
        let result = TimPlus::new(IndependentCascade)
            .epsilon(0.3)
            .seed(100 + k as u64)
            .run(&graph, k);
        let spread = estimator.estimate(&graph, &result.seeds);
        let hd = HighDegree.select(&graph, k);
        let hd_spread = estimator.estimate(&graph, &hd);
        let marginal = (spread - prev_spread) / (k - prev_k) as f64;
        table.push_row([
            k.to_string(),
            format!("{spread:.0}"),
            format!("{marginal:.1}"),
            format!("{hd_spread:.0}"),
            format!("{:+.0}", spread - hd_spread),
        ]);
        prev_spread = spread;
        prev_k = k;
    }
    println!("{table}");
    println!(
        "note the shrinking marginal adopters per extra seed: expected spread \
         is submodular,\nwhich is exactly why greedy selection carries a \
         (1 - 1/e - eps) guarantee."
    );
}
