//! Comparing diffusion models: IC vs LT vs a custom triggering model.
//!
//! The triggering model (paper §4.2) is the general abstraction: a node's
//! randomness is a sampled subset of its in-neighbours. This example runs
//! TIM+ under three models on the same network — including a custom
//! "limited attention" model expressible only in triggering form — and
//! compares the seed sets and their cross-model spreads.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use tim_influence::eval::Table;
use tim_influence::prelude::*;
use tim_rng::RandomSource;

fn main() {
    let mut graph = gen::barabasi_albert(3_000, 5, 0.2, 21);
    weights::assign_weighted_cascade(&mut graph);
    // LT weights: same 1/indeg assignment is already normalised per node.
    println!("network: n = {}, m = {}\n", graph.n(), graph.m());
    let k = 8;

    // Custom model: "limited attention" — each node samples its triggering
    // set like IC, but pays attention to at most its first 3 activations.
    let limited_attention = CustomTriggering::new(
        "IC-attention3",
        |g: &Graph, v, rng: &mut Rng, out: &mut Vec<NodeId>| {
            let nbrs = g.in_neighbors(v);
            let probs = g.in_probabilities(v);
            for (&u, &p) in nbrs.iter().zip(probs) {
                if out.len() >= 3 {
                    break;
                }
                if rng.bernoulli_f32(p) {
                    out.push(u);
                }
            }
        },
    );

    let ic_seeds = TimPlus::new(IndependentCascade)
        .epsilon(0.3)
        .seed(1)
        .run(&graph, k)
        .seeds;
    let lt_seeds = TimPlus::new(LinearThreshold)
        .epsilon(0.3)
        .seed(1)
        .run(&graph, k)
        .seeds;
    let la_seeds = TimPlus::new(&limited_attention)
        .epsilon(0.3)
        .seed(1)
        .run(&graph, k)
        .seeds;

    println!("IC seeds:          {ic_seeds:?}");
    println!("LT seeds:          {lt_seeds:?}");
    println!("attention-3 seeds: {la_seeds:?}\n");

    let overlap = |a: &[NodeId], b: &[NodeId]| a.iter().filter(|x| b.contains(x)).count();
    println!(
        "seed overlap: IC∩LT = {}/{k}, IC∩attn = {}/{k}, LT∩attn = {}/{k}\n",
        overlap(&ic_seeds, &lt_seeds),
        overlap(&ic_seeds, &la_seeds),
        overlap(&lt_seeds, &la_seeds),
    );

    // Cross-evaluate each seed set under each model.
    let mut table = Table::new(["seed set \\ eval model", "IC", "LT", "attention-3"]);
    for (name, seeds) in [
        ("IC-optimized", &ic_seeds),
        ("LT-optimized", &lt_seeds),
        ("attn-optimized", &la_seeds),
    ] {
        let ic = SpreadEstimator::new(IndependentCascade)
            .runs(5_000)
            .seed(2)
            .estimate(&graph, seeds);
        let lt = SpreadEstimator::new(LinearThreshold)
            .runs(5_000)
            .seed(2)
            .estimate(&graph, seeds);
        let la = SpreadEstimator::new(&limited_attention)
            .runs(2_000)
            .seed(2)
            .estimate(&graph, seeds);
        table.push_row([
            name.to_string(),
            format!("{ic:.0}"),
            format!("{lt:.0}"),
            format!("{la:.0}"),
        ]);
    }
    println!("{table}");
    println!(
        "each row's seed set should be (near-)best in its own column — the\n\
         diagonal dominance confirms TIM+ optimises the model it is given."
    );
}
