//! Quickstart: select influential seeds with TIM+ and verify their spread.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tim_influence::prelude::*;

fn main() {
    // 1. A synthetic scale-free social network (5 000 users). Replace with
    //    `io::load_edge_list("my_edges.txt", false)` for real data.
    let mut graph = gen::barabasi_albert(5_000, 4, 0.1, 7);

    // 2. The paper's IC setting: weighted cascade, p(e) = 1 / indeg(target).
    weights::assign_weighted_cascade(&mut graph);
    println!(
        "graph: n = {}, m = {}, avg degree = {:.1}",
        graph.n(),
        graph.m(),
        graph.degree_stats().avg_degree
    );

    // 3. TIM+ under the IC model: (1 - 1/e - eps)-approximate with
    //    probability >= 1 - 1/n.
    let k = 10;
    let result = TimPlus::new(IndependentCascade)
        .epsilon(0.2)
        .ell(1.0)
        .seed(42)
        .run(&graph, k);

    println!(
        "\nTIM+ selected {} seeds: {:?}",
        result.seeds.len(),
        result.seeds
    );
    println!("  KPT*  (Algorithm 2 bound) = {:.1}", result.kpt_star);
    println!(
        "  KPT+  (Algorithm 3 bound) = {:.1}",
        result.kpt_plus.unwrap()
    );
    println!("  theta (RR sets sampled)   = {}", result.theta);
    println!(
        "  phase times: estimation {:.3}s, refinement {:.3}s, selection {:.3}s",
        result.phases.parameter_estimation.as_secs_f64(),
        result.phases.refinement.as_secs_f64(),
        result.phases.node_selection.as_secs_f64(),
    );

    // 4. Ground-truth check with forward Monte Carlo simulation.
    let (spread, stderr) = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(1)
        .estimate_with_stderr(&graph, &result.seeds);
    println!(
        "\nMonte Carlo spread of the seed set: {spread:.1} ± {:.1} nodes \
         (coverage estimate was {:.1})",
        2.0 * stderr,
        result.estimated_spread
    );

    // 5. Sanity baseline: the k highest-degree nodes.
    let hd_seeds = HighDegree.select(&graph, k);
    let hd_spread = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(2)
        .estimate(&graph, &hd_seeds);
    println!("HighDegree baseline spread:         {hd_spread:.1} nodes");
}
