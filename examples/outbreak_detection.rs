//! Outbreak detection: where to place k monitors to catch cascades early.
//!
//! Leskovec et al.'s classic setting (the paper's reference \[21\], where
//! CELF was introduced): epidemics/rumours start anywhere and we must pick
//! k sensor nodes maximising the probability of detection.
//!
//! Detection duality: a monitor at node v catches a cascade from source s
//! iff s's cascade reaches v — i.e. iff v is "influenced" by s. Placing
//! monitors to catch uniformly-seeded cascades is therefore influence
//! maximization on the **transpose** graph, so TIM+ solves it with
//! guarantees.
//!
//! ```text
//! cargo run --release --example outbreak_detection
//! ```

use tim_influence::prelude::*;
use tim_rng::RandomSource;

fn main() {
    // A contact network with super-spreaders: heavy-tailed degrees, as in
    // real proximity networks (a few hubs touch many people).
    let mut contact = gen::symmetrize(&gen::powerlaw_configuration(4_000, 2.3, 3.0, 400, 13));
    weights::assign_constant(&mut contact, 0.08);
    println!(
        "contact network: n = {}, m = {}, power-law contact degrees\n",
        contact.n(),
        contact.m()
    );

    // Monitors listen along reversed edges: run TIM+ on the transpose.
    let reversed = contact.transpose();
    let k = 15;
    let result = TimPlus::new(IndependentCascade)
        .epsilon(0.3)
        .seed(5)
        .run(&reversed, k);
    println!("placed {k} monitors: {:?}", result.seeds);

    // Evaluate: simulate outbreaks from random sources on the ORIGINAL
    // graph and measure how often any monitor is activated (detection
    // rate), versus random or degree-based placement.
    let evaluate = |monitors: &[NodeId], tag: &str| {
        let mut rng = Rng::seed_from_u64(99);
        let mut ws = tim_influence::diffusion::SimWorkspace::new();
        let mut is_monitor = vec![false; contact.n()];
        for &m in monitors {
            is_monitor[m as usize] = true;
        }
        // Detection only matters for outbreaks with real impact: condition
        // on cascades that infect at least 20 people (tiny flare-ups burn
        // out on their own).
        let mut detected = 0usize;
        let mut outbreaks = 0usize;
        let mut attempts = 0usize;
        while outbreaks < 2_000 && attempts < 400_000 {
            attempts += 1;
            let source = rng.next_index(contact.n()) as NodeId;
            let size = IndependentCascade.simulate(&mut ws, &contact, &[source], &mut rng);
            if size < 20 {
                continue;
            }
            outbreaks += 1;
            if ws.activated().iter().any(|&v| is_monitor[v as usize]) {
                detected += 1;
            }
        }
        let rate = 100.0 * detected as f64 / outbreaks.max(1) as f64;
        println!("{tag:<22} detection rate: {rate:.1}% (over {outbreaks} major outbreaks)");
        rate
    };

    let tim_rate = evaluate(&result.seeds, "TIM+ placement");
    let hd = HighDegree.select(&reversed, k);
    evaluate(&hd, "HighDegree placement");
    let random: Vec<NodeId> = (0..k as u32).map(|i| i * 97 % contact.n() as u32).collect();
    let rand_rate = evaluate(&random, "random placement");

    let missed = |rate: f64| 100.0 - rate;
    println!(
        "\nTIM+ placement misses {:.1}% of major outbreaks vs {:.1}% for random \
         placement\n({:.1}x fewer undetected epidemics).",
        missed(tim_rate),
        missed(rand_rate),
        missed(rand_rate) / missed(tim_rate).max(1e-9)
    );
}
