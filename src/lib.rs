//! # tim-influence
//!
//! A production-quality Rust implementation of **TIM / TIM+** — *"Influence
//! Maximization: Near-Optimal Time Complexity Meets Practical Efficiency"*
//! (Tang, Xiao, Shi; SIGMOD 2014) — together with every substrate the paper
//! depends on: diffusion models (IC, LT, general triggering),
//! reverse-reachable-set sampling, max-coverage solvers, the baselines the
//! paper compares against (RIS, Greedy/CELF/CELF++, IRIE, SimPath), synthetic
//! dataset generators, and a full experiment harness.
//!
//! This crate is an umbrella that re-exports the workspace's public API.
//!
//! ## Quick start
//!
//! ```
//! use tim_influence::prelude::*;
//!
//! // A scale-free network with weighted-cascade probabilities.
//! let mut graph = gen::barabasi_albert(1_000, 4, 0.1, 7);
//! weights::assign_weighted_cascade(&mut graph);
//!
//! // Pick 10 seeds with TIM+ under the IC model.
//! let result = TimPlus::new(IndependentCascade)
//!     .epsilon(0.2)
//!     .seed(42)
//!     .run(&graph, 10);
//! assert_eq!(result.seeds.len(), 10);
//!
//! // Estimate their expected spread with forward Monte Carlo.
//! let spread = SpreadEstimator::new(IndependentCascade)
//!     .runs(1_000)
//!     .seed(1)
//!     .estimate(&graph, &result.seeds);
//! assert!(spread >= 10.0);
//! ```

pub use tim_baselines as baselines;
pub use tim_core as core;
pub use tim_coverage as coverage;
pub use tim_diffusion as diffusion;
pub use tim_engine as engine;
pub use tim_eval as eval;
pub use tim_graph as graph;
pub use tim_rng as rng;
pub use tim_server as server;

/// One-stop imports for applications.
pub mod prelude {
    pub use tim_baselines::{
        celf::{CelfGreedy, CelfVariant},
        degree_discount::DegreeDiscount,
        high_degree::HighDegree,
        irie::Irie,
        pagerank::PageRank,
        ris::Ris,
        simpath::SimPath,
        SeedSelector,
    };
    pub use tim_core::{Imm, ImmResult, SamplingPlan, Tim, TimPlus, TimResult};
    pub use tim_diffusion::{
        CustomTriggering, DiffusionModel, IndependentCascade, LinearThreshold, RrSampler,
        SimWorkspace, SpreadEstimator,
    };
    pub use tim_engine::{QueryEngine, QueryOutcome, RrPool, SharedEngine};
    pub use tim_graph::{gen, io, snapshot, weights, Graph, GraphBuilder, NodeId};
    pub use tim_rng::{RandomSource, Rng};
    pub use tim_server::{
        GraphCatalog, LabelMap, PoolCache, Server, ServerConfig, ServerState, Session,
    };
}
