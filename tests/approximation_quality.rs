//! Theorem 1 end-to-end: TIM's output is a `(1 − 1/e − ε)`-approximation.
//!
//! On deterministic graphs (all probabilities 0 or 1) the spread is exact
//! and OPT can be brute-forced, so the guarantee is checked without Monte
//! Carlo noise; on small probabilistic graphs OPT is brute-forced with
//! high-precision estimates.

use tim_influence::prelude::*;

/// Exact spread on a deterministic (p ∈ {0, 1}) graph.
fn exact_spread(g: &Graph, seeds: &[NodeId]) -> f64 {
    let live = {
        // Keep only p = 1 edges.
        let mut b = GraphBuilder::new(g.n());
        for (u, v, p) in g.edges() {
            if p >= 1.0 {
                b.add_edge_with_probability(u, v, 1.0);
            }
        }
        b.build()
    };
    tim_influence::diffusion::live_edge::forward_reachable(&live, seeds)
        .iter()
        .filter(|&&x| x)
        .count() as f64
}

fn brute_force_opt(g: &Graph, k: usize, spread: impl Fn(&[NodeId]) -> f64) -> f64 {
    let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut best = 0.0f64;
    let mut cur: Vec<NodeId> = Vec::with_capacity(k);
    fn rec(
        nodes: &[NodeId],
        k: usize,
        start: usize,
        cur: &mut Vec<NodeId>,
        best: &mut f64,
        spread: &impl Fn(&[NodeId]) -> f64,
    ) {
        if cur.len() == k {
            let s = spread(cur);
            if s > *best {
                *best = s;
            }
            return;
        }
        for i in start..nodes.len() {
            cur.push(nodes[i]);
            rec(nodes, k, i + 1, cur, best, spread);
            cur.pop();
        }
    }
    rec(&nodes, k, 0, &mut cur, &mut best, &spread);
    best
}

#[test]
fn tim_meets_guarantee_on_deterministic_graphs() {
    // Random deterministic graphs: each edge p = 1 or absent.
    for seed in 0..5u64 {
        let mut g = gen::erdos_renyi_gnm(14, 30, seed);
        weights::assign_constant(&mut g, 1.0);
        for k in [1usize, 2, 3] {
            let eps = 0.3;
            let opt = brute_force_opt(&g, k, |s| exact_spread(&g, s));
            let r = Tim::new(IndependentCascade)
                .epsilon(eps)
                .seed(seed * 31 + k as u64)
                .run(&g, k);
            let achieved = exact_spread(&g, &r.seeds);
            let bound = (1.0 - 1.0 / std::f64::consts::E - eps) * opt;
            assert!(
                achieved >= bound - 1e-9,
                "seed {seed}, k={k}: achieved {achieved} < bound {bound} (opt {opt})"
            );
        }
    }
}

#[test]
fn tim_plus_meets_guarantee_on_probabilistic_graph() {
    let mut g = gen::erdos_renyi_gnm(12, 40, 42);
    weights::assign_constant(&mut g, 0.4);
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(20_000)
        .seed(1);
    let k = 2;
    let eps = 0.3;
    let opt = brute_force_opt(&g, k, |s| est.estimate(&g, s));
    let r = TimPlus::new(IndependentCascade)
        .epsilon(eps)
        .seed(2)
        .run(&g, k);
    let achieved = SpreadEstimator::new(IndependentCascade)
        .runs(100_000)
        .seed(3)
        .estimate(&g, &r.seeds);
    // 3% slack absorbs Monte Carlo noise in both OPT and the estimate.
    let bound = (1.0 - 1.0 / std::f64::consts::E - eps) * opt * 0.97;
    assert!(
        achieved >= bound,
        "achieved {achieved} < bound {bound} (opt proxy {opt})"
    );
}

#[test]
fn tim_is_near_optimal_in_practice_not_just_in_bound() {
    // Empirically TIM lands within a few percent of brute-force OPT on
    // small instances — far above the worst-case bound.
    let mut g = gen::barabasi_albert(15, 2, 0.3, 7);
    weights::assign_constant(&mut g, 1.0);
    let k = 2;
    let opt = brute_force_opt(&g, k, |s| exact_spread(&g, s));
    let r = TimPlus::new(IndependentCascade)
        .epsilon(0.2)
        .seed(8)
        .run(&g, k);
    let achieved = exact_spread(&g, &r.seeds);
    assert!(
        achieved >= 0.95 * opt,
        "achieved {achieved} vs opt {opt}: deterministic instance should be near-exact"
    );
}
