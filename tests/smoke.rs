//! End-to-end smoke test: TIM and TIM+ on a tiny generated graph.
//!
//! This is the fastest whole-pipeline check in the suite (and the one
//! `scripts/kick-tires.sh` leans on): both drivers must produce a seed set
//! of the requested size, be bit-for-bit deterministic for a fixed seed of
//! the workspace `RandomSource` implementation, and report non-zero phase
//! timings and RR-set accounting.

use tim_influence::prelude::*;

fn tiny_graph() -> Graph {
    let mut g = gen::barabasi_albert(300, 3, 0.1, 11);
    weights::assign_weighted_cascade(&mut g);
    g
}

#[test]
fn tim_end_to_end_on_tiny_graph() {
    let g = tiny_graph();
    let k = 5;
    let result = Tim::new(IndependentCascade)
        .epsilon(0.5)
        .seed(42)
        .threads(1)
        .run(&g, k);

    assert_eq!(result.seeds.len(), k, "TIM must return exactly k seeds");
    let mut unique = result.seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), k, "seeds must be distinct");
    assert!(result.seeds.iter().all(|&v| (v as usize) < g.n()));

    assert!(result.theta > 0, "node selection must sample RR sets");
    assert!(result.total_rr_sets >= result.theta);
    assert!(result.kpt_star >= 1.0, "KPT* is bounded below by 1");
    assert!(result.kpt_plus.is_none(), "plain TIM skips refinement");
    assert!(result.estimated_spread >= k as f64);
    assert!(result.rr_memory_bytes > 0);
}

#[test]
fn tim_plus_end_to_end_on_tiny_graph() {
    let g = tiny_graph();
    let k = 5;
    let result = TimPlus::new(IndependentCascade)
        .epsilon(0.5)
        .seed(42)
        .threads(1)
        .run(&g, k);

    assert_eq!(result.seeds.len(), k);
    let kpt_plus = result.kpt_plus.expect("TIM+ must refine KPT");
    assert!(
        kpt_plus >= result.kpt_star,
        "Algorithm 3 never lowers the bound: {kpt_plus} < {}",
        result.kpt_star
    );
    assert!(result.epsilon_prime.is_some());
    assert!((0.0..=1.0).contains(&result.coverage_fraction));
}

#[test]
fn runs_are_deterministic_under_a_fixed_random_source() {
    let g = tiny_graph();
    for plus in [false, true] {
        let run = |seed: u64| {
            if plus {
                TimPlus::new(IndependentCascade)
                    .epsilon(0.5)
                    .seed(seed)
                    .threads(1)
                    .run(&g, 4)
            } else {
                Tim::new(IndependentCascade)
                    .epsilon(0.5)
                    .seed(seed)
                    .threads(1)
                    .run(&g, 4)
            }
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.seeds, b.seeds, "same seed must give same seed set");
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.kpt_star.to_bits(), b.kpt_star.to_bits());
        assert_eq!(a.estimated_spread.to_bits(), b.estimated_spread.to_bits());

        // And the underlying RandomSource stream itself is reproducible.
        let mut r1 = Rng::seed_from_u64(7);
        let mut r2 = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}

#[test]
fn phase_timings_are_nonzero() {
    let g = tiny_graph();
    let result = TimPlus::new(IndependentCascade)
        .epsilon(0.5)
        .seed(3)
        .threads(1)
        .run(&g, 5);

    let p = &result.phases;
    assert!(
        !p.parameter_estimation.is_zero(),
        "KPT estimation did no measurable work"
    );
    assert!(!p.refinement.is_zero(), "TIM+ refinement must be timed");
    assert!(!p.node_selection.is_zero(), "node selection must be timed");
    assert_eq!(
        p.total(),
        p.parameter_estimation + p.refinement + p.node_selection
    );
}
