//! End-to-end quality checks for the IMM extension: same contract as
//! TIM/TIM+ (Theorem-1-style guarantee), far fewer samples.

use tim_influence::core::Imm;
use tim_influence::prelude::*;

/// Exact spread on a deterministic (p ∈ {0, 1}) graph.
fn exact_spread(g: &Graph, seeds: &[NodeId]) -> f64 {
    let mut b = GraphBuilder::new(g.n());
    for (u, v, p) in g.edges() {
        if p >= 1.0 {
            b.add_edge_with_probability(u, v, 1.0);
        }
    }
    let live = b.build();
    tim_influence::diffusion::live_edge::forward_reachable(&live, seeds)
        .iter()
        .filter(|&&x| x)
        .count() as f64
}

fn brute_force_opt(g: &Graph, k: usize) -> f64 {
    let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut best = 0.0f64;
    let mut cur: Vec<NodeId> = Vec::new();
    fn rec(
        nodes: &[NodeId],
        g: &Graph,
        k: usize,
        start: usize,
        cur: &mut Vec<NodeId>,
        best: &mut f64,
    ) {
        if cur.len() == k {
            *best = (*best).max(exact_spread(g, cur));
            return;
        }
        for i in start..nodes.len() {
            cur.push(nodes[i]);
            rec(nodes, g, k, i + 1, cur, best);
            cur.pop();
        }
    }
    rec(&nodes, g, k, 0, &mut cur, &mut best);
    best
}

#[test]
fn imm_meets_guarantee_on_deterministic_graphs() {
    for seed in 0..4u64 {
        let mut g = gen::erdos_renyi_gnm(14, 30, seed);
        weights::assign_constant(&mut g, 1.0);
        for k in [1usize, 2, 3] {
            let eps = 0.3;
            let opt = brute_force_opt(&g, k);
            let r = Imm::new(IndependentCascade)
                .epsilon(eps)
                .seed(seed * 7 + k as u64)
                .run(&g, k);
            let achieved = exact_spread(&g, &r.seeds);
            let bound = (1.0 - 1.0 / std::f64::consts::E - eps) * opt;
            assert!(
                achieved >= bound - 1e-9,
                "seed {seed}, k={k}: achieved {achieved} < bound {bound} (opt {opt})"
            );
        }
    }
}

#[test]
fn imm_samples_less_than_tim_plus_at_tight_epsilon() {
    // The headline economy of the martingale approach, visible already at
    // moderate scale.
    let mut g = gen::barabasi_albert(600, 4, 0.0, 1);
    weights::assign_weighted_cascade(&mut g);
    let k = 20;
    let imm = Imm::new(IndependentCascade).epsilon(0.2).seed(2).run(&g, k);
    let timp = TimPlus::new(IndependentCascade)
        .epsilon(0.2)
        .seed(2)
        .run(&g, k);
    assert!(
        imm.theta < timp.total_rr_sets,
        "IMM sets {} should undercut TIM+ total {}",
        imm.theta,
        timp.total_rr_sets
    );
    // ... at matching quality.
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(3);
    let s_imm = est.estimate(&g, &imm.seeds);
    let s_timp = est.estimate(&g, &timp.seeds);
    assert!(
        (s_imm - s_timp).abs() / s_timp < 0.05,
        "IMM {s_imm} vs TIM+ {s_timp}"
    );
}

#[test]
fn imm_coverage_estimate_tracks_monte_carlo() {
    let mut g = gen::barabasi_albert(300, 4, 0.0, 4);
    weights::assign_weighted_cascade(&mut g);
    let r = Imm::new(IndependentCascade).epsilon(0.3).seed(5).run(&g, 8);
    let mc = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(6)
        .estimate(&g, &r.seeds);
    let rel = (r.estimated_spread - mc).abs() / mc;
    assert!(
        rel < 0.1,
        "coverage estimate {} vs MC {mc}",
        r.estimated_spread
    );
}
