//! Edge-case hardening: degenerate graphs and pathological parameters that
//! a library user will eventually feed in.

use tim_influence::prelude::*;

#[test]
fn tim_on_disconnected_graph_spans_components() {
    // Two disjoint stars with p = 1; k = 2 must pick both hubs.
    let mut b = GraphBuilder::new(20);
    for v in 1..10u32 {
        b.add_edge_with_probability(0, v, 1.0);
    }
    for v in 11..20u32 {
        b.add_edge_with_probability(10, v, 1.0);
    }
    let g = b.build();
    let r = TimPlus::new(IndependentCascade)
        .epsilon(0.3)
        .seed(1)
        .run(&g, 2);
    let mut seeds = r.seeds.clone();
    seeds.sort_unstable();
    assert_eq!(seeds, vec![0, 10]);
}

#[test]
fn tim_on_dead_graph_still_returns_k_seeds() {
    // All probabilities zero: every RR set is a singleton, KPT* bottoms out
    // at 1, and selection degenerates to near-uniform counting — but the
    // contract (k distinct seeds) must hold.
    let mut g = gen::erdos_renyi_gnm(16, 60, 2);
    weights::assign_constant(&mut g, 0.0);
    let r = Tim::new(IndependentCascade).epsilon(1.0).seed(3).run(&g, 4);
    assert_eq!(r.seeds.len(), 4);
    let mut s = r.seeds.clone();
    s.sort_unstable();
    s.dedup();
    assert_eq!(s.len(), 4);
    assert!(r.kpt_star >= 1.0);
    // Spread of k zero-probability seeds is exactly k.
    let spread = SpreadEstimator::new(IndependentCascade)
        .runs(200)
        .seed(4)
        .estimate(&g, &r.seeds);
    assert_eq!(spread, 4.0);
}

#[test]
fn tim_on_fully_deterministic_cycle() {
    // A p = 1 cycle: every node reaches everyone; any single seed is
    // optimal with spread n.
    let n = 12;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge_with_probability(i as NodeId, ((i + 1) % n) as NodeId, 1.0);
    }
    let g = b.build();
    let r = TimPlus::new(IndependentCascade)
        .epsilon(0.5)
        .seed(5)
        .run(&g, 1);
    let spread = SpreadEstimator::new(IndependentCascade)
        .runs(100)
        .seed(6)
        .estimate(&g, &r.seeds);
    assert_eq!(spread, n as f64);
}

#[test]
fn selectors_tolerate_k_equal_to_n() {
    let mut g = gen::erdos_renyi_gnm(10, 40, 7);
    weights::assign_weighted_cascade(&mut g);
    let n = g.n();
    assert_eq!(
        TimPlus::new(IndependentCascade)
            .epsilon(1.0)
            .seed(8)
            .run(&g, n)
            .seeds
            .len(),
        n
    );
    assert_eq!(HighDegree.select(&g, n).len(), n);
    assert_eq!(DegreeDiscount::new().select(&g, n).len(), n);
    assert_eq!(PageRank::new().select(&g, n).len(), n);
    assert_eq!(SimPath::new().select(&g, n).len(), n);
    assert_eq!(Irie::new(IndependentCascade).seed(9).select(&g, n).len(), n);
}

#[test]
fn single_edge_graph_works_end_to_end() {
    let mut b = GraphBuilder::new(2);
    b.add_edge_with_probability(0, 1, 0.5);
    let g = b.build();
    let r = Tim::new(IndependentCascade)
        .epsilon(1.0)
        .seed(10)
        .run(&g, 1);
    assert_eq!(r.seeds, vec![0], "the only influencer must be chosen");
}

#[test]
fn imm_handles_degenerate_graphs_too() {
    use tim_influence::core::Imm;
    let mut b = GraphBuilder::new(2);
    b.add_edge_with_probability(0, 1, 1.0);
    let g = b.build();
    let r = Imm::new(IndependentCascade)
        .epsilon(1.0)
        .seed(11)
        .run(&g, 1);
    assert_eq!(r.seeds, vec![0]);

    let mut dead = gen::erdos_renyi_gnm(12, 30, 12);
    weights::assign_constant(&mut dead, 0.0);
    let r = Imm::new(IndependentCascade)
        .epsilon(1.0)
        .seed(13)
        .run(&dead, 3);
    assert_eq!(r.seeds.len(), 3);
}

#[test]
fn spread_estimator_handles_self_influencing_structures() {
    // Mutual edges with p = 1: seeding either node activates both.
    let mut b = GraphBuilder::new(2);
    b.add_edge_with_probability(0, 1, 1.0);
    b.add_edge_with_probability(1, 0, 1.0);
    let g = b.build();
    let est = SpreadEstimator::new(IndependentCascade).runs(50).seed(14);
    assert_eq!(est.estimate(&g, &[0]), 2.0);
    assert_eq!(est.estimate(&g, &[0, 1]), 2.0);
}

#[test]
fn huge_k_relative_to_edges_pads_gracefully() {
    // 5 nodes, 1 edge, k = 5: coverage saturates after one pick.
    let mut b = GraphBuilder::new(5);
    b.add_edge_with_probability(0, 1, 1.0);
    let g = b.build();
    let r = TimPlus::new(IndependentCascade)
        .epsilon(1.0)
        .seed(15)
        .run(&g, 5);
    assert_eq!(r.seeds.len(), 5);
    let spread = SpreadEstimator::new(IndependentCascade)
        .runs(50)
        .seed(16)
        .estimate(&g, &r.seeds);
    assert_eq!(spread, 5.0);
}
