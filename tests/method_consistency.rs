//! Cross-method consistency: every selector produces valid seed sets, and
//! the guaranteed methods (TIM, TIM+, RIS, CELF) agree on quality within
//! Monte Carlo tolerance, as the paper's Figure 5 reports.

use tim_influence::prelude::*;

fn test_graph() -> Graph {
    let mut g = gen::barabasi_albert(250, 4, 0.0, 100);
    weights::assign_weighted_cascade(&mut g);
    g
}

fn assert_valid_seed_set(seeds: &[NodeId], k: usize, n: usize, tag: &str) {
    assert_eq!(seeds.len(), k, "{tag}: wrong seed count");
    let mut s = seeds.to_vec();
    s.sort_unstable();
    s.dedup();
    assert_eq!(s.len(), k, "{tag}: duplicate seeds");
    assert!(
        seeds.iter().all(|&v| (v as usize) < n),
        "{tag}: seed out of range"
    );
}

#[test]
fn every_selector_returns_valid_seed_sets() {
    let g = test_graph();
    let k = 8;
    let selectors: Vec<(String, Vec<NodeId>)> = vec![
        (
            "TIM".into(),
            Tim::new(IndependentCascade)
                .epsilon(0.5)
                .seed(1)
                .run(&g, k)
                .seeds,
        ),
        (
            "TIM+".into(),
            TimPlus::new(IndependentCascade)
                .epsilon(0.5)
                .seed(1)
                .run(&g, k)
                .seeds,
        ),
        (
            Ris::new(IndependentCascade)
                .tau_constant(0.05)
                .epsilon(1.0)
                .name(),
            Ris::new(IndependentCascade)
                .tau_constant(0.05)
                .epsilon(1.0)
                .seed(2)
                .select(&g, k),
        ),
        (
            CelfGreedy::new(IndependentCascade).runs(100).name(),
            CelfGreedy::new(IndependentCascade)
                .runs(100)
                .seed(3)
                .select(&g, k),
        ),
        (
            "IRIE".into(),
            Irie::new(IndependentCascade).seed(4).select(&g, k),
        ),
        ("SimPath".into(), SimPath::new().select(&g, k)),
        ("HighDegree".into(), HighDegree.select(&g, k)),
        ("DegreeDiscount".into(), DegreeDiscount::new().select(&g, k)),
        ("PageRank".into(), PageRank::new().select(&g, k)),
    ];
    for (name, seeds) in selectors {
        assert_valid_seed_set(&seeds, k, g.n(), &name);
    }
}

#[test]
fn guaranteed_methods_have_comparable_spread() {
    // Figure 5's message: no significant spread difference among the
    // approximation-guaranteed methods.
    let g = test_graph();
    let k = 8;
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(5);

    let tim = Tim::new(IndependentCascade)
        .epsilon(0.5)
        .seed(6)
        .run(&g, k)
        .seeds;
    let timp = TimPlus::new(IndependentCascade)
        .epsilon(0.5)
        .seed(6)
        .run(&g, k)
        .seeds;
    let celf = CelfGreedy::new(IndependentCascade)
        .variant(CelfVariant::Celf)
        .runs(200)
        .seed(7)
        .select(&g, k);

    let s_tim = est.estimate(&g, &tim);
    let s_timp = est.estimate(&g, &timp);
    let s_celf = est.estimate(&g, &celf);
    for (name, s) in [("TIM", s_tim), ("TIM+", s_timp), ("CELF", s_celf)] {
        let rel = (s - s_tim).abs() / s_tim;
        assert!(
            rel < 0.1,
            "{name} spread {s} deviates from TIM {s_tim} by {rel:.2}"
        );
    }
}

#[test]
fn guaranteed_methods_beat_cheap_heuristics_or_tie() {
    let g = test_graph();
    let k = 8;
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(8);
    let timp = TimPlus::new(IndependentCascade)
        .epsilon(0.5)
        .seed(9)
        .run(&g, k)
        .seeds;
    let hd = HighDegree.select(&g, k);
    let s_timp = est.estimate(&g, &timp);
    let s_hd = est.estimate(&g, &hd);
    assert!(
        s_timp >= 0.95 * s_hd,
        "TIM+ {s_timp} should not lose to HighDegree {s_hd}"
    );
}

#[test]
fn tim_prefix_spreads_are_monotone_in_k() {
    let g = test_graph();
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(5_000)
        .seed(10);
    let mut prev = 0.0;
    for k in [1usize, 4, 8, 16] {
        let seeds = TimPlus::new(IndependentCascade)
            .epsilon(0.5)
            .seed(11)
            .run(&g, k)
            .seeds;
        let s = est.estimate(&g, &seeds);
        assert!(
            s >= prev * 0.98,
            "spread must grow with k: k={k} gives {s}, previous {prev}"
        );
        prev = s;
    }
}
