//! §4.2 generality: the full TIM+ pipeline runs unchanged on any
//! triggering model, and a custom model expressing IC produces results
//! equivalent to the built-in IC fast path.

use tim_influence::prelude::*;
use tim_influence::rng::RandomSource;

/// IC expressed as a custom triggering distribution.
fn ic_as_custom() -> CustomTriggering<impl Fn(&Graph, NodeId, &mut Rng, &mut Vec<NodeId>) + Sync> {
    CustomTriggering::new(
        "IC-as-triggering",
        |g: &Graph, v, rng: &mut Rng, out: &mut Vec<NodeId>| {
            let nbrs = g.in_neighbors(v);
            let probs = g.in_probabilities(v);
            for (&u, &p) in nbrs.iter().zip(probs) {
                if rng.bernoulli_f32(p) {
                    out.push(u);
                }
            }
        },
    )
}

#[test]
fn custom_ic_spread_matches_builtin_ic() {
    let mut g = gen::barabasi_albert(200, 4, 0.0, 1);
    weights::assign_weighted_cascade(&mut g);
    let seeds = [0u32, 3, 8];
    let builtin = SpreadEstimator::new(IndependentCascade)
        .runs(20_000)
        .seed(2)
        .estimate(&g, &seeds);
    let custom_model = ic_as_custom();
    let custom = SpreadEstimator::new(&custom_model)
        .runs(20_000)
        .seed(3)
        .estimate(&g, &seeds);
    let rel = (builtin - custom).abs() / builtin;
    assert!(rel < 0.05, "builtin {builtin} vs custom {custom}");
}

#[test]
fn tim_plus_runs_on_custom_model_with_sane_output() {
    let mut g = gen::barabasi_albert(200, 4, 0.0, 4);
    weights::assign_weighted_cascade(&mut g);
    let model = ic_as_custom();
    let r = TimPlus::new(&model).epsilon(0.6).seed(5).run(&g, 5);
    assert_eq!(r.seeds.len(), 5);
    // Quality: custom-model selection evaluated under builtin IC should be
    // competitive with builtin-IC selection (they are the same model).
    let r_builtin = TimPlus::new(IndependentCascade)
        .epsilon(0.6)
        .seed(5)
        .run(&g, 5);
    let est = SpreadEstimator::new(IndependentCascade)
        .runs(10_000)
        .seed(6);
    let s_custom = est.estimate(&g, &r.seeds);
    let s_builtin = est.estimate(&g, &r_builtin.seeds);
    assert!(
        (s_custom - s_builtin).abs() / s_builtin < 0.1,
        "custom {s_custom} vs builtin {s_builtin}"
    );
}

#[test]
fn lt_pipeline_end_to_end() {
    let mut g = gen::barabasi_albert(250, 4, 0.0, 7);
    weights::assign_lt_normalized(&mut g, 8);
    let r = TimPlus::new(LinearThreshold)
        .epsilon(0.5)
        .seed(9)
        .run(&g, 6);
    assert_eq!(r.seeds.len(), 6);
    let est = SpreadEstimator::new(LinearThreshold).runs(10_000).seed(10);
    let s = est.estimate(&g, &r.seeds);
    // Coverage estimate and MC estimate must agree (Corollary 1 again,
    // this time through the whole pipeline).
    let rel = (s - r.estimated_spread).abs() / s;
    assert!(
        rel < 0.15,
        "MC {s} vs coverage estimate {}",
        r.estimated_spread
    );
}

#[test]
fn fixed_size_triggering_model_works() {
    // A model with no IC/LT analogue: each node is triggered by exactly
    // min(2, indeg) uniformly chosen in-neighbours.
    let model = CustomTriggering::new(
        "pick-2",
        |g: &Graph, v, rng: &mut Rng, out: &mut Vec<NodeId>| {
            let nbrs = g.in_neighbors(v);
            match nbrs.len() {
                0 => {}
                1 => out.push(nbrs[0]),
                len => {
                    let a = rng.next_index(len);
                    let mut b = rng.next_index(len - 1);
                    if b >= a {
                        b += 1;
                    }
                    out.push(nbrs[a]);
                    out.push(nbrs[b]);
                }
            }
        },
    );
    let g = gen::barabasi_albert(150, 3, 0.0, 11);
    let r = TimPlus::new(&model).epsilon(0.8).seed(12).run(&g, 4);
    assert_eq!(r.seeds.len(), 4);
    assert!(r.estimated_spread >= 1.0);
    // Selected seeds must beat arbitrary seeds under this model.
    let est = SpreadEstimator::new(&model).runs(5_000).seed(13);
    let s_sel = est.estimate(&g, &r.seeds);
    let s_arb = est.estimate(&g, &[50, 51, 52, 53]);
    assert!(s_sel >= s_arb, "selected {s_sel} vs arbitrary {s_arb}");
}
