//! Property-based tests (proptest) for cross-crate invariants on random
//! graphs and random seed sets.

use proptest::prelude::*;
use tim_influence::coverage::{greedy_max_cover, greedy_max_cover_bucket, SetCollection};
use tim_influence::prelude::*;
use tim_influence::rng::Xoshiro256pp as TimRng;

/// Strategy: a random directed graph as (n, edge list with probabilities).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.0f32..=1.0), 0..(n * 3));
        edges.prop_map(move |es| {
            let mut b = GraphBuilder::new(n);
            for (u, v, p) in es {
                b.add_edge_with_probability(u, v, p);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_and_validates(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
        // edges() count matches m, and transpose preserves the multiset.
        prop_assert_eq!(g.edges().count(), g.m());
        let t = g.transpose();
        prop_assert_eq!(t.m(), g.m());
        let mut a: Vec<_> = g.edges().map(|(u, v, p)| (u, v, p.to_bits())).collect();
        let mut b: Vec<_> = t.edges().map(|(u, v, p)| (v, u, p.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn degree_sums_agree(g in arb_graph()) {
        let out_sum: usize = (0..g.n() as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..g.n() as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.m());
        prop_assert_eq!(in_sum, g.m());
    }

    #[test]
    fn rr_sets_contain_root_and_only_ancestors(
        g in arb_graph(),
        root_pick in 0u32..40,
        seed in 0u64..1000,
    ) {
        let root = root_pick % g.n() as u32;
        let mut sampler = RrSampler::new(IndependentCascade);
        let mut rng = TimRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let stats = sampler.sample_for(&g, root, &mut rng, &mut out);
        prop_assert_eq!(out[0], root);
        prop_assert_eq!(stats.nodes as usize, out.len());
        // Every member must reach the root in the full graph (necessary
        // condition for membership in any live-edge RR set).
        let can_reach =
            tim_influence::diffusion::live_edge::reverse_reachable(&g, root);
        for &u in &out {
            prop_assert!(can_reach[u as usize], "node {} cannot reach root", u);
        }
        // Width accounting.
        let w: u64 = out.iter().map(|&v| g.in_degree(v) as u64).sum();
        prop_assert_eq!(stats.width, w);
    }

    #[test]
    fn forward_simulation_respects_reachability(
        g in arb_graph(),
        seed_pick in 0u32..40,
        seed in 0u64..1000,
    ) {
        let s = seed_pick % g.n() as u32;
        let mut ws = SimWorkspace::new();
        let mut rng = TimRng::seed_from_u64(seed);
        let count = IndependentCascade.simulate(&mut ws, &g, &[s], &mut rng);
        // Activated nodes must be reachable from the seed in G.
        let reach = tim_influence::diffusion::live_edge::forward_reachable(&g, &[s]);
        for &v in ws.activated() {
            prop_assert!(reach[v as usize]);
        }
        let max_reach = reach.iter().filter(|&&x| x).count() as u32;
        prop_assert!(count >= 1 && count <= max_reach);
    }

    #[test]
    fn greedy_cover_marginals_decrease_and_match_count(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..25, 1..6),
            1..40,
        ),
        k in 1usize..6,
    ) {
        let mut c = SetCollection::new(25);
        for s in &sets {
            let members: Vec<NodeId> = s.iter().copied().collect();
            c.push(&members);
        }
        let mut c2 = c.clone();
        let r = greedy_max_cover(&mut c, k);
        for w in r.marginal.windows(2) {
            prop_assert!(w[0] >= w[1], "marginals increased: {:?}", r.marginal);
        }
        prop_assert_eq!(r.covered, c.count_covered(&r.seeds));
        // Bucket variant achieves the same (1-1/e)-sound coverage range.
        let rb = greedy_max_cover_bucket(&mut c2, k);
        let (lo, hi) = (r.covered.min(rb.covered), r.covered.max(rb.covered));
        prop_assert!(lo as f64 >= (1.0 - 1.0 / std::f64::consts::E) * hi as f64);
    }

    #[test]
    fn spread_estimator_bounds(g in arb_graph(), seed in 0u64..1000) {
        let seeds: Vec<NodeId> = vec![0, (g.n() as u32 - 1).min(3)];
        let est = SpreadEstimator::new(IndependentCascade)
            .runs(200)
            .threads(1)
            .seed(seed);
        let s = est.estimate(&g, &seeds);
        let distinct = {
            let mut d = seeds.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        prop_assert!(s >= distinct as f64 - 1e-9);
        prop_assert!(s <= g.n() as f64 + 1e-9);
    }

    #[test]
    fn lt_rr_draws_equal_nodes(g in arb_graph(), seed in 0u64..1000) {
        let mut sampler = RrSampler::new(LinearThreshold);
        let mut rng = TimRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let (_, stats) = sampler.sample_random(&g, &mut rng, &mut out);
        prop_assert_eq!(stats.draws, stats.nodes);
    }

    #[test]
    fn alias_table_sampling_stays_in_range(
        weights in proptest::collection::vec(0.0f64..100.0, 1..50),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = tim_influence::rng::AliasTable::new(&weights);
        let mut rng = TimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {}", i);
        }
    }
}
