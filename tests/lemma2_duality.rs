//! Lemma 2 / Lemma 9 duality: RR-set membership probabilities equal
//! forward activation probabilities — the identity the whole RIS/TIM
//! family rests on.

use tim_influence::diffusion::live_edge::{
    forward_reachable, reverse_reachable, sample_live_edge_graph,
};
use tim_influence::prelude::*;

/// On each *fixed* sampled live-edge graph the coupling is exact:
/// `v reachable from S`  ⇔  `RR(v) ∩ S ≠ ∅`.
#[test]
fn duality_is_exact_per_live_edge_sample_ic() {
    let mut g = gen::erdos_renyi_gnm(60, 240, 1);
    weights::assign_constant(&mut g, 0.3);
    let mut rng = Rng::seed_from_u64(2);
    let seeds = [0u32, 7, 13];
    for _ in 0..40 {
        let live = sample_live_edge_graph(&g, &IndependentCascade, &mut rng);
        let fwd = forward_reachable(&live, &seeds);
        for v in 0..g.n() as NodeId {
            let rr = reverse_reachable(&live, v);
            let rr_hits = seeds.iter().any(|&s| rr[s as usize]);
            assert_eq!(fwd[v as usize], rr_hits, "coupling violated at node {v}");
        }
    }
}

#[test]
fn duality_is_exact_per_live_edge_sample_lt() {
    let mut g = gen::erdos_renyi_gnm(50, 200, 3);
    weights::assign_lt_normalized(&mut g, 4);
    let mut rng = Rng::seed_from_u64(5);
    let seeds = [1u32, 2];
    for _ in 0..40 {
        let live = sample_live_edge_graph(&g, &LinearThreshold, &mut rng);
        let fwd = forward_reachable(&live, &seeds);
        for v in 0..g.n() as NodeId {
            let rr = reverse_reachable(&live, v);
            assert_eq!(fwd[v as usize], seeds.iter().any(|&s| rr[s as usize]));
        }
    }
}

/// Corollary 1: `n · E[F_R(S)] = E[I(S)]`. Checked statistically by
/// comparing the RR-coverage estimator against forward Monte Carlo.
#[test]
fn corollary1_coverage_estimates_spread_ic() {
    let mut g = gen::barabasi_albert(300, 4, 0.0, 6);
    weights::assign_weighted_cascade(&mut g);
    let seeds = [0u32, 5, 9];

    let (collection, _) =
        tim_influence::core::parallel::generate_rr_sets(&g, &IndependentCascade, 30_000, 7, 1);
    let coverage_estimate = collection.coverage_fraction(&seeds) * g.n() as f64;

    let (mc, se) = SpreadEstimator::new(IndependentCascade)
        .runs(30_000)
        .seed(8)
        .estimate_with_stderr(&g, &seeds);
    let diff = (coverage_estimate - mc).abs();
    assert!(
        diff < 6.0 * se.max(0.05) + 0.05 * mc,
        "coverage {coverage_estimate} vs MC {mc} (se {se})"
    );
}

#[test]
fn corollary1_coverage_estimates_spread_lt() {
    let mut g = gen::barabasi_albert(300, 4, 0.0, 9);
    weights::assign_lt_normalized(&mut g, 10);
    let seeds = [2u32, 11];

    let (collection, _) =
        tim_influence::core::parallel::generate_rr_sets(&g, &LinearThreshold, 30_000, 11, 1);
    let coverage_estimate = collection.coverage_fraction(&seeds) * g.n() as f64;

    let (mc, se) = SpreadEstimator::new(LinearThreshold)
        .runs(30_000)
        .seed(12)
        .estimate_with_stderr(&g, &seeds);
    let diff = (coverage_estimate - mc).abs();
    assert!(
        diff < 6.0 * se.max(0.05) + 0.05 * mc,
        "coverage {coverage_estimate} vs MC {mc} (se {se})"
    );
}

/// Lemma 4: `(n/m)·EPT = E[I({v*})]` where `v*` is drawn with probability
/// proportional to in-degree.
#[test]
fn lemma4_ept_relation_holds() {
    let mut g = gen::barabasi_albert(200, 4, 0.0, 13);
    weights::assign_weighted_cascade(&mut g);
    let n = g.n() as f64;
    let m = g.m() as f64;

    // Left side: (n/m) * average RR-set width.
    let mut sampler = RrSampler::new(IndependentCascade);
    let mut rng = Rng::seed_from_u64(14);
    let mut buf = Vec::new();
    let rounds = 40_000;
    let mut total_width = 0u64;
    for _ in 0..rounds {
        let (_, st) = sampler.sample_random(&g, &mut rng, &mut buf);
        total_width += st.width;
    }
    let lhs = n / m * (total_width as f64 / rounds as f64);

    // Right side: E[I({v*})] with v* ~ in-degree distribution.
    let weights_v: Vec<f64> = (0..g.n() as u32).map(|v| g.in_degree(v) as f64).collect();
    let table = tim_influence::rng::AliasTable::new(&weights_v);
    let mut ws = SimWorkspace::new();
    let mut total_spread = 0u64;
    for _ in 0..rounds {
        let v = table.sample(&mut rng) as NodeId;
        total_spread += IndependentCascade.simulate(&mut ws, &g, &[v], &mut rng) as u64;
    }
    let rhs = total_spread as f64 / rounds as f64;

    let rel = (lhs - rhs).abs() / rhs;
    assert!(rel < 0.05, "(n/m)EPT = {lhs} vs E[I(v*)] = {rhs}");
}
