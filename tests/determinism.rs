//! End-to-end determinism: every pipeline is a pure function of its seed,
//! independent of thread count — the reproducibility contract the
//! experiment harness relies on.

use tim_influence::prelude::*;

fn graph() -> Graph {
    let mut g = gen::barabasi_albert(200, 4, 0.1, 55);
    weights::assign_weighted_cascade(&mut g);
    g
}

#[test]
fn tim_plus_identical_across_runs_and_threads() {
    let g = graph();
    let run = |threads: usize| {
        TimPlus::new(IndependentCascade)
            .epsilon(0.6)
            .seed(77)
            .threads(threads)
            .run(&g, 6)
    };
    let a = run(1);
    let b = run(1);
    let c = run(3);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.seeds, c.seeds);
    assert_eq!(a.theta, c.theta);
    assert_eq!(a.kpt_star, c.kpt_star);
    assert_eq!(a.kpt_plus, c.kpt_plus);
    assert_eq!(a.estimated_spread, c.estimated_spread);
}

#[test]
fn spread_estimates_identical_across_threads() {
    let g = graph();
    let est = |threads: usize| {
        SpreadEstimator::new(LinearThreshold)
            .runs(3_000)
            .seed(5)
            .threads(threads)
            .estimate(&g, &[1, 2, 3])
    };
    assert_eq!(est(1), est(4));
}

#[test]
fn dataset_builds_are_stable_across_calls() {
    use tim_influence::eval::Dataset;
    let a = Dataset::NetHept.build(0.05, 9);
    let b = Dataset::NetHept.build(0.05, 9);
    assert_eq!(a.m(), b.m());
    let ea: Vec<_> = a.edges().collect();
    let eb: Vec<_> = b.edges().collect();
    assert_eq!(ea, eb);
}

#[test]
fn baselines_are_deterministic() {
    let g = graph();
    assert_eq!(HighDegree.select(&g, 5), HighDegree.select(&g, 5));
    assert_eq!(
        DegreeDiscount::new().select(&g, 5),
        DegreeDiscount::new().select(&g, 5)
    );
    assert_eq!(PageRank::new().select(&g, 5), PageRank::new().select(&g, 5));
    assert_eq!(SimPath::new().select(&g, 5), SimPath::new().select(&g, 5));
    let ris = Ris::new(IndependentCascade)
        .epsilon(1.0)
        .tau_constant(0.05)
        .seed(3);
    assert_eq!(ris.select(&g, 5), ris.select(&g, 5));
    let irie = Irie::new(IndependentCascade).seed(4);
    assert_eq!(irie.select(&g, 5), irie.select(&g, 5));
    let celf = CelfGreedy::new(IndependentCascade).runs(50).seed(5);
    assert_eq!(celf.select(&g, 3), celf.select(&g, 3));
}

#[test]
fn different_seeds_change_sampling_outcomes() {
    let g = graph();
    let a = TimPlus::new(IndependentCascade)
        .epsilon(0.6)
        .seed(1)
        .run(&g, 5);
    let b = TimPlus::new(IndependentCascade)
        .epsilon(0.6)
        .seed(2)
        .run(&g, 5);
    // Seeds may coincide (the graph has clear hubs) but the sampled
    // quantities should differ at bit level.
    assert!(
        a.kpt_star != b.kpt_star || a.theta != b.theta || a.estimated_spread != b.estimated_spread
    );
}
